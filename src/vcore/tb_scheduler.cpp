#include "vcore/tb_scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

namespace llamcat {

TbScheduler::TbScheduler(const ITbSource& source, std::uint32_t num_cores,
                         TbDispatch mode, RequestDispatch req_mode)
    : source_(source),
      mode_(mode),
      req_mode_(req_mode),
      total_(source.num_tbs()) {
  assert(num_cores > 0);

  // Request provenance scan (dense indices in order of first appearance).
  tb_req_idx_.reserve(total_);
  std::unordered_map<std::uint32_t, std::uint32_t> dense;
  for (std::uint64_t t = 0; t < total_; ++t) {
    const std::uint32_t rid = source_.tb(t).request_id;
    const auto [it, inserted] = dense.try_emplace(
        rid, static_cast<std::uint32_t>(request_ids_.size()));
    if (inserted) {
      request_ids_.push_back(rid);
      req_total_.push_back(0);
    }
    tb_req_idx_.push_back(it->second);
    ++req_total_[it->second];
  }
  if (request_ids_.empty()) {  // empty source: keep the vectors well-formed
    request_ids_.push_back(0);
    req_total_.push_back(0);
  }
  req_dispatched_.assign(request_ids_.size(), 0);
  req_completed_.assign(request_ids_.size(), 0);
  done_.assign(total_, false);

  if (req_mode_ == RequestDispatch::kPartitioned && num_requests() > 1) {
    build_partitioned_queues(num_cores);
    return;
  }

  // Dispatch order: source order, or round-robin across requests.
  std::vector<std::uint64_t> order(total_);
  for (std::uint64_t t = 0; t < total_; ++t) order[t] = t;
  if (req_mode_ == RequestDispatch::kInterleave && num_requests() > 1) {
    std::vector<std::vector<std::uint64_t>> by_req(num_requests());
    for (std::uint64_t t = 0; t < total_; ++t) {
      by_req[tb_req_idx_[t]].push_back(t);
    }
    order.clear();
    std::vector<std::size_t> next(by_req.size(), 0);
    while (order.size() < total_) {
      for (std::size_t r = 0; r < by_req.size(); ++r) {
        if (next[r] < by_req[r].size()) order.push_back(by_req[r][next[r]++]);
      }
    }
  }
  build_queues(num_cores, order);
}

void TbScheduler::build_queues(std::uint32_t num_cores,
                               const std::vector<std::uint64_t>& order) {
  if (mode_ == TbDispatch::kGlobalQueue) {
    queues_.resize(1);
    for (const std::uint64_t t : order) queues_[0].push_back(t);
  } else if (mode_ == TbDispatch::kPartitionedStealing) {
    queues_.resize(num_cores);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      queues_[i % num_cores].push_back(order[i]);
    }
  } else {  // kStaticBlocked: per-core trace files = contiguous chunks
    queues_.resize(num_cores);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      const std::uint64_t c = i * num_cores / order.size();
      queues_[c].push_back(order[i]);
    }
  }
}

void TbScheduler::build_partitioned_queues(std::uint32_t num_cores) {
  // Contiguous core groups: request r owns cores [r*C/R, (r+1)*C/R). With
  // more requests than cores the groups wrap (request r -> core r % C) and
  // a core serves several requests in arrival order.
  const std::uint32_t nreq = num_requests();
  queues_.resize(num_cores);
  core_group_.assign(num_cores, kNoRequest);
  std::vector<std::uint32_t> group_begin(nreq), group_size(nreq);
  for (std::uint32_t r = 0; r < nreq; ++r) {
    if (nreq <= num_cores) {
      group_begin[r] = r * num_cores / nreq;
      group_size[r] = (r + 1) * num_cores / nreq - group_begin[r];
    } else {
      group_begin[r] = r % num_cores;
      group_size[r] = 1;
    }
  }
  if (nreq <= num_cores) {
    for (std::uint32_t r = 0; r < nreq; ++r) {
      for (std::uint32_t c = 0; c < group_size[r]; ++c) {
        core_group_[group_begin[r] + c] = r;
      }
    }
  }  // else cores stay kNoRequest (mixed): stealing is unrestricted.

  // Within a group, deal the request's TBs by the underlying mode
  // (kGlobalQueue has no per-core queues to partition; treat it as
  // round-robin inside the group).
  std::vector<std::uint64_t> req_seen(nreq, 0);
  for (std::uint64_t t = 0; t < total_; ++t) {
    const std::uint32_t r = tb_req_idx_[t];
    const std::uint64_t i = req_seen[r]++;
    std::uint32_t c;
    if (mode_ == TbDispatch::kStaticBlocked) {
      c = static_cast<std::uint32_t>(i * group_size[r] / req_total_[r]);
    } else {
      c = static_cast<std::uint32_t>(i % group_size[r]);
    }
    queues_[group_begin[r] + c].push_back(t);
  }
}

std::optional<std::uint64_t> TbScheduler::next_tb(CoreId core) {
  const auto dispatch = [this](std::uint64_t tb) {
    ++req_dispatched_[tb_req_idx_[tb]];
    return tb;
  };
  if (queues_.size() == 1) {  // global queue
    if (queues_[0].empty()) return std::nullopt;
    const std::uint64_t tb = queues_[0].front();
    queues_[0].pop_front();
    return dispatch(tb);
  }
  auto& own = queues_[core];
  if (!own.empty()) {
    const std::uint64_t tb = own.front();
    own.pop_front();
    return dispatch(tb);
  }
  // Redistribution: steal the front of the most-loaded partition (the
  // slowest core's oldest pending block). Under kPartitioned, only cores of
  // the same request group are eligible victims.
  const std::uint32_t group =
      core_group_.empty() ? kNoRequest : core_group_[core];
  std::size_t victim = queues_.size();
  std::size_t most = 0;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (group != kNoRequest && core_group_[c] != group) continue;
    if (queues_[c].size() > most) {
      most = queues_[c].size();
      victim = c;
    }
  }
  if (victim == queues_.size()) return std::nullopt;
  const std::uint64_t tb = queues_[victim].front();
  queues_[victim].pop_front();
  ++stolen_;
  return dispatch(tb);
}

void TbScheduler::mark_complete(std::uint64_t tb_idx) {
  assert(tb_idx < total_);
  assert(!done_[tb_idx] && "thread block completed twice");
  done_[tb_idx] = true;
  ++completed_;
  ++req_completed_[tb_req_idx_[tb_idx]];
}

}  // namespace llamcat
