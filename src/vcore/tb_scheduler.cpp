#include "vcore/tb_scheduler.hpp"

#include <cassert>

namespace llamcat {

TbScheduler::TbScheduler(const ITbSource& source, std::uint32_t num_cores,
                         TbDispatch mode)
    : source_(source), mode_(mode), total_(source.num_tbs()) {
  assert(num_cores > 0);
  if (mode_ == TbDispatch::kGlobalQueue) {
    queues_.resize(1);
    for (std::uint64_t t = 0; t < total_; ++t) queues_[0].push_back(t);
  } else if (mode_ == TbDispatch::kPartitionedStealing) {
    queues_.resize(num_cores);
    for (std::uint64_t t = 0; t < total_; ++t) {
      queues_[t % num_cores].push_back(t);
    }
  } else {  // kStaticBlocked: per-core trace files = contiguous chunks
    queues_.resize(num_cores);
    for (std::uint64_t t = 0; t < total_; ++t) {
      const std::uint64_t c = t * num_cores / total_;
      queues_[c].push_back(t);
    }
  }
}

std::optional<std::uint64_t> TbScheduler::next_tb(CoreId core) {
  if (mode_ == TbDispatch::kGlobalQueue) {
    if (queues_[0].empty()) return std::nullopt;
    const std::uint64_t tb = queues_[0].front();
    queues_[0].pop_front();
    return tb;
  }
  auto& own = queues_[core];
  if (!own.empty()) {
    const std::uint64_t tb = own.front();
    own.pop_front();
    return tb;
  }
  // Redistribution: steal the front of the most-loaded partition (the
  // slowest core's oldest pending block).
  std::size_t victim = queues_.size();
  std::size_t most = 0;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (queues_[c].size() > most) {
      most = queues_[c].size();
      victim = c;
    }
  }
  if (victim == queues_.size()) return std::nullopt;
  const std::uint64_t tb = queues_[victim].front();
  queues_[victim].pop_front();
  ++stolen_;
  return tb;
}

}  // namespace llamcat
