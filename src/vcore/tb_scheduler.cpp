#include "vcore/tb_scheduler.hpp"

#include <cassert>

namespace llamcat {

std::uint32_t TbScheduler::scan_request(std::uint64_t t) {
  const std::uint32_t rid = source_.tb(t).request_id;
  std::uint32_t r = dense_index_of(rid);
  if (r == kNoRequest) {
    r = static_cast<std::uint32_t>(request_ids_.size());
    request_ids_.push_back(rid);
    req_total_.push_back(0);
    req_dispatched_.push_back(0);
    req_completed_.push_back(0);
  }
  tb_req_idx_.push_back(r);
  ++req_total_[r];
  return r;
}

std::vector<std::uint64_t> TbScheduler::dispatch_order(
    std::uint64_t first, std::uint64_t last) const {
  const std::uint64_t count = last - first;
  std::vector<std::uint64_t> order;
  order.reserve(count);
  for (std::uint64_t t = first; t < last; ++t) order.push_back(t);
  if (req_mode_ != RequestDispatch::kInterleave || num_requests() <= 1) {
    return order;
  }
  // Round-robin across requests (order of first appearance in the range).
  std::vector<std::vector<std::uint64_t>> by_req(num_requests());
  for (std::uint64_t t = first; t < last; ++t) {
    by_req[tb_req_idx_[t]].push_back(t);
  }
  order.clear();
  std::vector<std::size_t> next(by_req.size(), 0);
  while (order.size() < count) {
    for (std::size_t r = 0; r < by_req.size(); ++r) {
      if (next[r] < by_req[r].size()) order.push_back(by_req[r][next[r]++]);
    }
  }
  return order;
}

TbScheduler::TbScheduler(const ITbSource& source, std::uint32_t num_cores,
                         TbDispatch mode, RequestDispatch req_mode)
    : source_(source),
      mode_(mode),
      req_mode_(req_mode),
      total_(source.num_tbs()) {
  assert(num_cores > 0);

  // Request provenance scan (dense indices in order of first appearance).
  tb_req_idx_.reserve(total_);
  for (std::uint64_t t = 0; t < total_; ++t) scan_request(t);
  done_.assign(total_, false);

  if (req_mode_ == RequestDispatch::kPartitioned && num_requests() > 1) {
    build_partitioned_queues(num_cores);
    return;
  }
  build_queues(num_cores, dispatch_order(0, total_));
}

void TbScheduler::build_queues(std::uint32_t num_cores,
                               const std::vector<std::uint64_t>& order) {
  // kPartitioned never uses the single global queue, even under
  // kGlobalQueue (build_partitioned_queues has no per-core queues to
  // partition there either and falls back to round-robin): group isolation
  // needs per-core queues, and a later injection of a second request must
  // find them in place.
  if (mode_ == TbDispatch::kGlobalQueue &&
      req_mode_ != RequestDispatch::kPartitioned) {
    queues_.resize(1);
    for (const std::uint64_t t : order) queues_[0].push_back(t);
  } else if (mode_ == TbDispatch::kPartitionedStealing ||
             mode_ == TbDispatch::kGlobalQueue) {
    queues_.resize(num_cores);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      queues_[i % num_cores].push_back(order[i]);
    }
  } else {  // kStaticBlocked: per-core trace files = contiguous chunks
    queues_.resize(num_cores);
    for (std::uint64_t i = 0; i < order.size(); ++i) {
      const std::uint64_t c = i * num_cores / order.size();
      queues_[c].push_back(order[i]);
    }
  }
}

void TbScheduler::build_partitioned_queues(std::uint32_t num_cores) {
  // Contiguous core groups: request r owns cores [r*C/R, (r+1)*C/R). With
  // more requests than cores the groups wrap (request r -> core r % C) and
  // a core serves several requests in arrival order.
  const std::uint32_t nreq = num_requests();
  queues_.resize(num_cores);
  core_group_.assign(num_cores, kNoRequest);
  std::vector<std::uint32_t> group_begin(nreq), group_size(nreq);
  for (std::uint32_t r = 0; r < nreq; ++r) {
    if (nreq <= num_cores) {
      group_begin[r] = r * num_cores / nreq;
      group_size[r] = (r + 1) * num_cores / nreq - group_begin[r];
    } else {
      group_begin[r] = r % num_cores;
      group_size[r] = 1;
    }
  }
  if (nreq <= num_cores) {
    for (std::uint32_t r = 0; r < nreq; ++r) {
      for (std::uint32_t c = 0; c < group_size[r]; ++c) {
        core_group_[group_begin[r] + c] = r;
      }
    }
  }  // else cores stay kNoRequest (mixed): stealing is unrestricted.

  // Within a group, deal the request's TBs by the underlying mode
  // (kGlobalQueue has no per-core queues to partition; treat it as
  // round-robin inside the group).
  std::vector<std::uint64_t> req_seen(nreq, 0);
  for (std::uint64_t t = 0; t < total_; ++t) {
    const std::uint32_t r = tb_req_idx_[t];
    const std::uint64_t i = req_seen[r]++;
    std::uint32_t c;
    if (mode_ == TbDispatch::kStaticBlocked) {
      c = static_cast<std::uint32_t>(i * group_size[r] / req_total_[r]);
    } else {
      c = static_cast<std::uint32_t>(i % group_size[r]);
    }
    queues_[group_begin[r] + c].push_back(t);
  }
}

std::optional<std::uint64_t> TbScheduler::next_tb(CoreId core) {
  const auto dispatch = [this](std::uint64_t tb) {
    ++epoch_;  // a pop changes every core's work visibility
    const std::uint32_t r = tb_req_idx_[tb];
    if (++req_dispatched_[r] == 1 && observer_ != nullptr) {
      observer_->on_first_dispatch(r);
    }
    return tb;
  };
  if (queues_.size() == 1) {  // global queue
    if (queues_[0].empty()) return std::nullopt;
    const std::uint64_t tb = queues_[0].front();
    queues_[0].pop_front();
    return dispatch(tb);
  }
  auto& own = queues_[core];
  if (!own.empty()) {
    const std::uint64_t tb = own.front();
    own.pop_front();
    return dispatch(tb);
  }
  // Redistribution: steal the front of the most-loaded partition (the
  // slowest core's oldest pending block). Under kPartitioned, only cores of
  // the same request group are eligible victims.
  const std::uint32_t group =
      core_group_.empty() ? kNoRequest : core_group_[core];
  std::size_t victim = queues_.size();
  std::size_t most = 0;
  for (std::size_t c = 0; c < queues_.size(); ++c) {
    if (group != kNoRequest && core_group_[c] != group) continue;
    if (queues_[c].size() > most) {
      most = queues_[c].size();
      victim = c;
    }
  }
  if (victim == queues_.size()) return std::nullopt;
  const std::uint64_t tb = queues_[victim].front();
  queues_[victim].pop_front();
  ++stolen_;
  return dispatch(tb);
}

std::uint64_t TbScheduler::sync_with_source() {
  const std::uint64_t n = source_.num_tbs();
  if (n <= total_) return 0;
  const std::uint64_t first = total_;
  const std::uint64_t count = n - first;
  done_.resize(n, false);
  tb_req_idx_.reserve(n);
  for (std::uint64_t t = first; t < n; ++t) scan_request(t);

  // Deal the injected batch by the same rules build_queues applies, with
  // the batch playing the role of the whole dispatch order (a single
  // injection into an empty scheduler therefore lands exactly where
  // construction would have put it).
  if (req_mode_ == RequestDispatch::kPartitioned) {
    // A request carved into a core group at construction keeps that group
    // (group-local stealing must still be able to reach its blocks). A
    // request with no carved group - first seen via injection - deals over
    // the *uncarved* cores only, so carved requests keep their exclusive
    // cores; when every core is carved (or there is just one core), it
    // falls back to a single home core to bound the disruption. Stealing
    // stays unrestricted for groupless cores (see the header comment).
    const std::uint64_t ncores = queues_.size();
    const std::uint32_t nreq = num_requests();
    std::vector<std::uint64_t> uncarved;
    for (std::uint64_t c = 0; c < core_group_.size(); ++c) {
      if (core_group_[c] == kNoRequest) uncarved.push_back(c);
    }
    if (core_group_.empty()) {  // nothing was ever carved
      for (std::uint64_t c = 0; c < ncores; ++c) uncarved.push_back(c);
    }
    // Per dense request: the cores its injected blocks may land on.
    std::vector<std::vector<std::uint64_t>> cores_of(nreq);
    for (std::uint32_t r = 0; r < nreq; ++r) {
      for (std::uint64_t c = 0; c < core_group_.size(); ++c) {
        if (core_group_[c] == r) cores_of[r].push_back(c);
      }
      if (cores_of[r].empty()) {
        cores_of[r] = uncarved.empty()
                          ? std::vector<std::uint64_t>{r % ncores}
                          : uncarved;
      }
    }
    std::vector<std::uint64_t> batch_total(nreq, 0), seen(nreq, 0);
    for (std::uint64_t t = first; t < n; ++t) ++batch_total[tb_req_idx_[t]];
    for (std::uint64_t t = first; t < n; ++t) {
      const std::uint32_t r = tb_req_idx_[t];
      const std::vector<std::uint64_t>& cores = cores_of[r];
      const std::uint64_t i = seen[r]++;
      const std::uint64_t c = mode_ == TbDispatch::kStaticBlocked
                                  ? i * cores.size() / batch_total[r]
                                  : i % cores.size();
      queues_[cores[(r + c) % cores.size()]].push_back(t);
    }
  } else {
    const std::uint64_t ncores = queues_.size();
    const std::vector<std::uint64_t> order = dispatch_order(first, n);
    for (std::uint64_t i = 0; i < count; ++i) {
      const std::uint64_t c = mode_ == TbDispatch::kStaticBlocked
                                  ? i * ncores / count
                                  : i % ncores;
      queues_[c].push_back(order[i]);
    }
  }
  total_ = n;
  ++epoch_;
  return count;
}

void TbScheduler::mark_complete(std::uint64_t tb_idx) {
  assert(tb_idx < total_);
  assert(!done_[tb_idx] && "thread block completed twice");
  ++epoch_;
  done_[tb_idx] = true;
  ++completed_;
  const std::uint32_t r = tb_req_idx_[tb_idx];
  ++req_completed_[r];
  if (observer_ != nullptr) observer_->on_request_complete(r);
}

}  // namespace llamcat
