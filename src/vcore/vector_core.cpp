#include "vcore/vector_core.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace llamcat {

VectorCore::VectorCore(const CoreConfig& cfg, const L1Config& l1cfg,
                       CoreId id, std::uint64_t seed)
    : cfg_(cfg),
      id_(id),
      l1_(l1cfg, id, seed),
      windows_(cfg.num_inst_windows),
      max_tb_(cfg.num_inst_windows) {
  for (auto& w : windows_) w.slots.init(cfg_.inst_window_depth);
}

void VectorCore::on_load_fill(Addr line_addr) {
  frozen_valid_ = false;  // a fill readies slots and changes L1 contents
  l1_.on_fill(line_addr, fill_waiters_);
  for (const L1Cache::LoadTag tag : fill_waiters_) {
    // The tag is the waiting slot's address (see try_issue): the load
    // completes immediately and is retired at the next retire phase.
    reinterpret_cast<Slot*>(static_cast<std::uintptr_t>(tag))->ready = 0;
  }
  assert(pending_loads_ >= fill_waiters_.size());
  pending_loads_ -= fill_waiters_.size();
}

void VectorCore::set_max_tb(std::uint32_t n) {
  frozen_valid_ = false;  // a throttle move can enable a fetch
  max_tb_ = std::clamp<std::uint32_t>(n, 1, cfg_.num_inst_windows);
}

void VectorCore::retire(Cycle now) {
  for (auto& w : windows_) {
    if (!w.has_tb) continue;
    std::uint32_t retired = 0;
    while (!w.slots.empty() && retired < cfg_.retire_width) {
      Slot& head = w.slots.front();
      if (head.ready > now) break;
      w.slots.pop_front();
      ++retired;
    }
    if (w.has_tb && w.next_instr == w.instr_count && w.slots.empty()) {
      // Thread block complete.
      scheduler_->mark_complete(w.tb_idx);
      ++tbs_completed_;
      if (first_tb_seen_ && !first_tb_report_ && w.tb_idx == first_tb_idx_) {
        const Cycle dur = std::max<Cycle>(1, now - first_tb_start_);
        first_tb_report_ = FirstTbReport{
            dur, static_cast<double>(c_mem_total_marker(now)) /
                     static_cast<double>(dur)};
      }
      w.has_tb = false;
      --active_count_;
    }
  }
}

// Helper: C_mem accumulated since the first TB started. Kept as a member-
// style helper to avoid an extra field read in the hot path.
Cycle VectorCore::c_mem_total_marker(Cycle /*now*/) const {
  // c_mem_ is reset by take_sample(); track an absolute count instead.
  return c_mem_abs_ - first_tb_cmem_at_start_;
}

void VectorCore::fetch_tb(Cycle now) {
  if (active_windows() >= max_tb_) return;
  for (auto& w : windows_) {
    if (w.has_tb) continue;
    auto tb = scheduler_->next_tb(id_);
    if (!tb) return;
    w.has_tb = true;
    ++active_count_;
    w.tb_idx = *tb;
    w.req_idx = scheduler_->request_index_of_tb(*tb);
    w.next_instr = 0;
    w.instr_count = scheduler_->source().instr_count(*tb);
    w.slots.clear();
    if (!first_tb_seen_) {
      first_tb_seen_ = true;
      first_tb_idx_ = *tb;
      first_tb_start_ = now;
      first_tb_cmem_at_start_ = c_mem_abs_;
    }
    return;  // one TB dispatch per cycle
  }
}

VectorCore::BlockReason VectorCore::try_issue(Window& w, Cycle now) {
  if (!w.has_tb) return BlockReason::kNoWork;
  if (w.next_instr >= w.instr_count) {
    // Stream exhausted; the window is draining.
    if (w.slots.empty()) return BlockReason::kNoWork;
    return w.slots.front().ready == kNeverCycle ? BlockReason::kMemory
                                                : BlockReason::kCompute;
  }
  if (w.slots.size() >= cfg_.inst_window_depth) {
    // Window full: blocked on the oldest unfinished slot.
    const Slot& head = w.slots.front();
    return (head.kind == Instr::Kind::kLoad && head.ready == kNeverCycle)
               ? BlockReason::kMemory
               : BlockReason::kCompute;
  }
  const Instr ins =
      scheduler_->source().instr_at(w.tb_idx, w.next_instr);
  switch (ins.kind) {
    case Instr::Kind::kCompute: {
      w.slots.push_back(Slot{ins.kind, now + ins.cycles});
      ++w.next_instr;
      return BlockReason::kNone;
    }
    case Instr::Kind::kLoad: {
      // Push the slot first so its (stable) address can serve as the L1
      // load tag; a kBlocked result pops it right back.
      Slot& slot = w.slots.push_back(Slot{ins.kind, kNeverCycle});
      const auto tag = static_cast<L1Cache::LoadTag>(
          reinterpret_cast<std::uintptr_t>(&slot));
      switch (l1_.access_load(ins.line_addr, tag)) {
        case L1Cache::LoadResult::kHit:
          slot.ready = now + l1_.latency();
          ++w.next_instr;
          return BlockReason::kNone;
        case L1Cache::LoadResult::kMissMerged:
        case L1Cache::LoadResult::kMissNew:
          ++pending_loads_;
          ++w.next_instr;
          return BlockReason::kNone;
        case L1Cache::LoadResult::kBlocked:
          w.slots.pop_back();
          return BlockReason::kMemory;
      }
      w.slots.pop_back();
      return BlockReason::kMemory;
    }
    case Instr::Kind::kStore: {
      if (store_buffer_.size() >= cfg_.store_buffer_size)
        return BlockReason::kMemory;
      l1_.access_store(ins.line_addr);  // write-through probe
      store_buffer_.push_back(ins.line_addr);
      // Posted store: retires immediately, no slot occupied.
      ++w.next_instr;
      return BlockReason::kNone;
    }
  }
  return BlockReason::kNone;
}

void VectorCore::tick_full(Cycle now) {
  frozen_valid_ = false;

  if (active_count_ != 0) retire(now);  // nothing to retire on an idle core
  fetch_tb(now);

  if (active_count_ == 0) {
    ++c_idle_;
    try_freeze(now);
    return;
  }

  bool any_mem_block = false;
  bool issued_any = false;
  std::uint32_t issued_count = 0;
  const std::uint32_t n = cfg_.num_inst_windows;
  for (std::uint32_t attempt = 0;
       attempt < n && issued_count < cfg_.issue_width; ++attempt) {
    Window& w = windows_[active_ptr_];
    const BlockReason r = try_issue(w, now);
    if (r == BlockReason::kNone) {
      ++issued_;
      ++issued_by_req_[w.req_idx];
      ++issued_count;
      issued_any = true;
      // Stay on this window (switch only on blockage).
    } else {
      if (r == BlockReason::kMemory) any_mem_block = true;
      active_ptr_ = (active_ptr_ + 1) % n;
    }
  }
  if (!issued_any) {
    if (any_mem_block) {
      ++c_mem_;
      ++c_mem_abs_;
    }
    try_freeze(now);
  }
}

void VectorCore::try_freeze(Cycle now) {
  if (!fast_path_) return;
  const WaitProfile p = wait_profile(now);
  if (p.busy) return;
  frozen_ = p;
  frozen_epoch_ = scheduler_->epoch();
  frozen_valid_ = true;
}

VectorCore::WaitProfile VectorCore::wait_profile(Cycle now) const {
  WaitProfile p;
  // A fetch is possible next cycle: active < max_tb guarantees a free
  // window (max_tb <= num_windows), and the scheduler has eligible work.
  if (active_count_ < max_tb_ && scheduler_ != nullptr &&
      scheduler_->has_tb_for(id_)) {
    p.busy = true;
    return p;
  }
  if (active_count_ == 0) {
    // Idle core: only an external injection (wake-hinted) or nothing can
    // change it. Posted stores in the store buffer drain through the
    // System-level outgoing check, not through tick.
    p.idle = true;
    return p;
  }
  for (const auto& w : windows_) {
    if (!w.has_tb) continue;
    if (w.next_instr == w.instr_count && w.slots.empty()) {
      // Completion pending: mark_complete fires at the next retire.
      p.busy = true;
      return p;
    }
    if (!w.slots.empty()) {
      const Cycle head_ready = w.slots.front().ready;
      if (head_ready != kNeverCycle) {
        if (head_ready <= now + 1) {
          p.busy = true;  // retires next cycle
          return p;
        }
        p.next_event = std::min(p.next_event, head_ready);
      }
    }
    // Issue attempt mirror of try_issue (const; no side effects).
    const bool draining = w.next_instr >= w.instr_count;
    const bool full = w.slots.size() >= cfg_.inst_window_depth;
    if (draining || full) {
      // Blocked on the head slot: kMemory iff it is a pending load
      // (only loads carry ready == kNeverCycle); a finite head is a
      // kCompute block whose unblock cycle is already in next_event.
      if (!w.slots.empty() && w.slots.front().ready == kNeverCycle) {
        p.mem_block = true;
      }
      continue;
    }
    const Instr ins = scheduler_->source().instr_at(w.tb_idx, w.next_instr);
    switch (ins.kind) {
      case Instr::Kind::kCompute:
        p.busy = true;
        return p;
      case Instr::Kind::kLoad:
        // access_load issues (hit, merge, or new miss) unless the miss
        // queue is full and the line neither hits nor merges.
        if (l1_.would_hit(ins.line_addr) ||
            l1_.has_pending_miss(ins.line_addr) || !l1_.miss_queue_full()) {
          p.busy = true;
          return p;
        }
        p.mem_block = true;
        ++p.blocked_loads;  // one ++load_blocked attempt per frozen cycle
        break;
      case Instr::Kind::kStore:
        if (store_buffer_.size() < cfg_.store_buffer_size) {
          p.busy = true;
          return p;
        }
        p.mem_block = true;
        break;
    }
  }
  return p;
}

void VectorCore::apply_skip(std::uint64_t cycles, const WaitProfile& p) {
  assert(!p.busy);
  if (p.idle) {
    c_idle_ += cycles;
  } else if (p.mem_block) {
    c_mem_ += cycles;
    c_mem_abs_ += cycles;
  }
  if (p.blocked_loads != 0) {
    l1_.add_blocked_loads(static_cast<std::uint64_t>(p.blocked_loads) *
                          cycles);
  }
}

void VectorCore::pop_outgoing() {
  if (l1_.peek_outbox()) {
    l1_.pop_outbox();
    return;
  }
  assert(!store_buffer_.empty());
  frozen_valid_ = false;  // the drain can unblock a store-blocked window
  store_buffer_.pop_front();
}

CoreSample VectorCore::take_sample() {
  CoreSample s{c_mem_, c_idle_};
  c_mem_ = 0;
  c_idle_ = 0;
  return s;
}

bool VectorCore::fully_idle() const {
  if (!store_buffer_.empty() || pending_loads_ != 0) return false;
  if (l1_.peek_outbox()) return false;
  for (const auto& w : windows_) {
    if (w.has_tb) return false;
  }
  return true;
}

}  // namespace llamcat
