#include "vcore/vector_core.hpp"

#include <algorithm>
#include <cassert>

namespace llamcat {

VectorCore::VectorCore(const CoreConfig& cfg, const L1Config& l1cfg,
                       CoreId id, std::uint64_t seed)
    : cfg_(cfg),
      id_(id),
      l1_(l1cfg, id, seed),
      windows_(cfg.num_inst_windows),
      max_tb_(cfg.num_inst_windows) {}

void VectorCore::on_load_fill(Addr line_addr) {
  for (std::uint32_t id : l1_.on_fill(line_addr)) {
    auto it = inflight_loads_.find(id);
    assert(it != inflight_loads_.end());
    it->second->ready = 0;  // completes immediately (retired next retire phase)
    inflight_loads_.erase(it);
  }
}

void VectorCore::set_max_tb(std::uint32_t n) {
  max_tb_ = std::clamp<std::uint32_t>(n, 1, cfg_.num_inst_windows);
}

std::uint32_t VectorCore::active_windows() const {
  std::uint32_t n = 0;
  for (const auto& w : windows_) n += w.has_tb ? 1 : 0;
  return n;
}

void VectorCore::retire(Cycle now) {
  for (auto& w : windows_) {
    if (!w.has_tb) continue;
    std::uint32_t retired = 0;
    while (!w.slots.empty() && retired < cfg_.retire_width) {
      Slot& head = w.slots.front();
      if (head.ready > now) break;
      w.slots.pop_front();
      ++retired;
    }
    if (w.has_tb && w.next_instr == w.instr_count && w.slots.empty()) {
      // Thread block complete.
      scheduler_->mark_complete(w.tb_idx);
      ++tbs_completed_;
      if (first_tb_seen_ && !first_tb_report_ && w.tb_idx == first_tb_idx_) {
        const Cycle dur = std::max<Cycle>(1, now - first_tb_start_);
        first_tb_report_ = FirstTbReport{
            dur, static_cast<double>(c_mem_total_marker(now)) /
                     static_cast<double>(dur)};
      }
      w.has_tb = false;
    }
  }
}

// Helper: C_mem accumulated since the first TB started. Kept as a member-
// style helper to avoid an extra field read in the hot path.
Cycle VectorCore::c_mem_total_marker(Cycle /*now*/) const {
  // c_mem_ is reset by take_sample(); track an absolute count instead.
  return c_mem_abs_ - first_tb_cmem_at_start_;
}

void VectorCore::fetch_tb(Cycle now) {
  if (active_windows() >= max_tb_) return;
  for (auto& w : windows_) {
    if (w.has_tb) continue;
    auto tb = scheduler_->next_tb(id_);
    if (!tb) return;
    w.has_tb = true;
    w.tb_idx = *tb;
    w.req_idx = scheduler_->request_index_of_tb(*tb);
    w.next_instr = 0;
    w.instr_count = scheduler_->source().instr_count(*tb);
    w.slots.clear();
    if (!first_tb_seen_) {
      first_tb_seen_ = true;
      first_tb_idx_ = *tb;
      first_tb_start_ = now;
      first_tb_cmem_at_start_ = c_mem_abs_;
    }
    return;  // one TB dispatch per cycle
  }
}

VectorCore::BlockReason VectorCore::try_issue(Window& w, Cycle now) {
  if (!w.has_tb) return BlockReason::kNoWork;
  if (w.next_instr >= w.instr_count) {
    // Stream exhausted; the window is draining.
    if (w.slots.empty()) return BlockReason::kNoWork;
    return w.slots.front().ready == kNeverCycle ? BlockReason::kMemory
                                                : BlockReason::kCompute;
  }
  if (w.slots.size() >= cfg_.inst_window_depth) {
    // Window full: blocked on the oldest unfinished slot.
    const Slot& head = w.slots.front();
    return (head.kind == Instr::Kind::kLoad && head.ready == kNeverCycle)
               ? BlockReason::kMemory
               : BlockReason::kCompute;
  }
  const Instr ins =
      scheduler_->source().instr_at(w.tb_idx, w.next_instr);
  switch (ins.kind) {
    case Instr::Kind::kCompute: {
      w.slots.push_back(Slot{ins.kind, now + ins.cycles, 0});
      ++w.next_instr;
      return BlockReason::kNone;
    }
    case Instr::Kind::kLoad: {
      const std::uint32_t id = next_load_id_++;
      switch (l1_.access_load(ins.line_addr, id)) {
        case L1Cache::LoadResult::kHit:
          w.slots.push_back(Slot{ins.kind, now + l1_.latency(), 0});
          ++w.next_instr;
          return BlockReason::kNone;
        case L1Cache::LoadResult::kMissMerged:
        case L1Cache::LoadResult::kMissNew: {
          w.slots.push_back(Slot{ins.kind, kNeverCycle, id});
          inflight_loads_[id] = &w.slots.back();
          ++w.next_instr;
          return BlockReason::kNone;
        }
        case L1Cache::LoadResult::kBlocked:
          return BlockReason::kMemory;
      }
      return BlockReason::kMemory;
    }
    case Instr::Kind::kStore: {
      if (store_buffer_.size() >= cfg_.store_buffer_size)
        return BlockReason::kMemory;
      l1_.access_store(ins.line_addr);  // write-through probe
      store_buffer_.push_back(ins.line_addr);
      // Posted store: retires immediately, no slot occupied.
      ++w.next_instr;
      return BlockReason::kNone;
    }
  }
  return BlockReason::kNone;
}

void VectorCore::tick(Cycle now) {
  retire(now);
  fetch_tb(now);

  if (active_windows() == 0) {
    ++c_idle_;
    return;
  }

  bool any_mem_block = false;
  bool issued_any = false;
  std::uint32_t issued_count = 0;
  const std::uint32_t n = cfg_.num_inst_windows;
  for (std::uint32_t attempt = 0;
       attempt < n && issued_count < cfg_.issue_width; ++attempt) {
    Window& w = windows_[active_ptr_];
    const BlockReason r = try_issue(w, now);
    if (r == BlockReason::kNone) {
      ++issued_;
      ++issued_by_req_[w.req_idx];
      ++issued_count;
      issued_any = true;
      // Stay on this window (switch only on blockage).
    } else {
      if (r == BlockReason::kMemory) any_mem_block = true;
      active_ptr_ = (active_ptr_ + 1) % n;
    }
  }
  if (!issued_any && any_mem_block) {
    ++c_mem_;
    ++c_mem_abs_;
  }
}

std::optional<VectorCore::Outgoing> VectorCore::peek_outgoing() const {
  if (auto line = l1_.peek_outbox()) {
    return Outgoing{*line, AccessType::kLoad};
  }
  if (!store_buffer_.empty()) {
    return Outgoing{store_buffer_.front(), AccessType::kStore};
  }
  return std::nullopt;
}

void VectorCore::pop_outgoing() {
  if (l1_.peek_outbox()) {
    l1_.pop_outbox();
    return;
  }
  assert(!store_buffer_.empty());
  store_buffer_.pop_front();
}

CoreSample VectorCore::take_sample() {
  CoreSample s{c_mem_, c_idle_};
  c_mem_ = 0;
  c_idle_ = 0;
  return s;
}

bool VectorCore::fully_idle() const {
  if (!store_buffer_.empty() || !inflight_loads_.empty()) return false;
  if (l1_.peek_outbox()) return false;
  for (const auto& w : windows_) {
    if (w.has_tb) return false;
  }
  return true;
}

}  // namespace llamcat
