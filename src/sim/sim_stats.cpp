#include "sim/sim_stats.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>

namespace llamcat {

Cycle percentile_nearest_rank(std::vector<Cycle> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  p = std::clamp(p, 0.0, 100.0);
  const auto n = static_cast<double>(values.size());
  std::size_t rank = static_cast<std::size_t>(std::ceil(p / 100.0 * n));
  rank = std::clamp<std::size_t>(rank, 1, values.size());
  return values[rank - 1];
}

void RequestSlice::accumulate(const RequestSlice& other) {
  cycles_in_flight += other.cycles_in_flight;
  if (other.first_dispatch_cycle != 0 &&
      (first_dispatch_cycle == 0 ||
       other.first_dispatch_cycle < first_dispatch_cycle)) {
    first_dispatch_cycle = other.first_dispatch_cycle;
  }
  if (other.last_complete_cycle > last_complete_cycle) {
    last_complete_cycle = other.last_complete_cycle;
  }
  instructions += other.instructions;
  thread_blocks += other.thread_blocks;
  llc_lookups += other.llc_lookups;
  llc_hits += other.llc_hits;
  llc_misses += other.llc_misses;
  llc_mshr_hits += other.llc_mshr_hits;
  dram_reads += other.dram_reads;
  dram_writes += other.dram_writes;
}

void SimStats::accumulate(const SimStats& other) {
  const Cycle combined_cycles = cycles + other.cycles;
  const double w_self =
      combined_cycles > 0
          ? static_cast<double>(cycles) / static_cast<double>(combined_cycles)
          : 0.0;
  const double w_other = combined_cycles > 0 ? 1.0 - w_self : 0.0;

  // Time-averaged occupancy/stall rates combine cycle-weighted.
  mshr_entry_util = w_self * mshr_entry_util + w_other * other.mshr_entry_util;
  t_cs = w_self * t_cs + w_other * other.t_cs;

  cycles = combined_cycles;
  if (core_hz == 0.0) core_hz = other.core_hz;
  instructions += other.instructions;
  thread_blocks += other.thread_blocks;
  dram_reads += other.dram_reads;
  dram_writes += other.dram_writes;
  counters.merge(other.counters);

  ipc = cycles > 0 ? static_cast<double>(instructions) /
                         static_cast<double>(cycles)
                   : 0.0;

  // Ratio metrics recompute exactly from the merged LLC counters.
  const std::uint64_t lookups = counters.get("llc.lookups");
  const std::uint64_t hits = counters.get("llc.hits");
  const std::uint64_t misses = counters.get("llc.misses");
  const std::uint64_t merges = counters.get("llc.mshr_hits");
  l2_hit_rate = lookups ? static_cast<double>(hits) / lookups : 0.0;
  mshr_hit_rate = misses ? static_cast<double>(merges) / misses : 0.0;
  dram_bw_gbps =
      seconds() > 0
          ? static_cast<double>((dram_reads + dram_writes) * kLineBytes) /
                seconds() / 1e9
          : 0.0;

  // Per-request slices merge by request id (sequential-wave semantics).
  for (const RequestSlice& o : other.per_request) {
    bool merged = false;
    for (RequestSlice& mine : per_request) {
      if (mine.request_id == o.request_id) {
        mine.accumulate(o);
        merged = true;
        break;
      }
    }
    if (!merged) per_request.push_back(o);
  }
}

void SimStats::print(std::ostream& os, bool include_per_request) const {
  os << std::fixed << std::setprecision(4);
  os << "cycles            " << cycles << "\n";
  os << "time_ms           " << seconds() * 1e3 << "\n";
  os << "ipc(total)        " << ipc << "\n";
  os << "l2_hit_rate       " << l2_hit_rate << "\n";
  os << "mshr_hit_rate     " << mshr_hit_rate << "\n";
  os << "mshr_entry_util   " << mshr_entry_util << "\n";
  os << "dram_bw_gbps      " << dram_bw_gbps << "\n";
  os << "t_cs              " << t_cs << "\n";
  os << "instructions      " << instructions << "\n";
  os << "thread_blocks     " << thread_blocks << "\n";
  os << "dram_reads        " << dram_reads << "\n";
  os << "dram_writes       " << dram_writes << "\n";
  if (!include_per_request) return;
  for (const RequestSlice& r : per_request) {
    os << "req" << r.request_id << "             "
       << " in_flight=" << r.cycles_in_flight << " tbs=" << r.thread_blocks
       << " dram_rd=" << r.dram_reads << " dram_wr=" << r.dram_writes
       << " l2_hit=" << r.l2_hit_rate() << "\n";
  }
}

}  // namespace llamcat
