#include "sim/sim_stats.hpp"

#include <iomanip>

namespace llamcat {

void SimStats::print(std::ostream& os) const {
  os << std::fixed << std::setprecision(4);
  os << "cycles            " << cycles << "\n";
  os << "time_ms           " << seconds() * 1e3 << "\n";
  os << "ipc(total)        " << ipc << "\n";
  os << "l2_hit_rate       " << l2_hit_rate << "\n";
  os << "mshr_hit_rate     " << mshr_hit_rate << "\n";
  os << "mshr_entry_util   " << mshr_entry_util << "\n";
  os << "dram_bw_gbps      " << dram_bw_gbps << "\n";
  os << "t_cs              " << t_cs << "\n";
  os << "instructions      " << instructions << "\n";
  os << "thread_blocks     " << thread_blocks << "\n";
  os << "dram_reads        " << dram_reads << "\n";
  os << "dram_writes       " << dram_writes << "\n";
}

}  // namespace llamcat
