// Machine-readable exports of experiment results (CSV and JSON), so sweeps
// run through the CLI or the bench binaries can feed plotting scripts
// without scraping the text tables.
#pragma once

#include <ostream>
#include <span>
#include <string>

#include "sim/experiment.hpp"

namespace llamcat {

/// Columns shared by every run: derived headline metrics first, then raw
/// totals. Counter maps can be appended optionally (union of keys).
struct ReportOptions {
  bool include_counters = false;  // append every merged component counter
  char separator = ',';
};

/// Writes one row per result, with a header row. Counter columns (when
/// enabled) are the sorted union of all counter names across results;
/// missing entries are written as 0.
void write_csv(std::ostream& os, std::span<const ExperimentResult> results,
               const ReportOptions& opts = {});

/// Writes a JSON array of result objects. Counters are always included
/// (JSON is the lossless export).
void write_json(std::ostream& os, std::span<const ExperimentResult> results);

/// Single-run convenience used by the CLI.
void write_json(std::ostream& os, const std::string& name,
                const SimStats& stats);

}  // namespace llamcat
