#include "sim/experiment.hpp"

#include <chrono>
#include <future>
#include <iostream>

#include "common/thread_pool.hpp"
#include "sim/system.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {

namespace {
// The hybrid framework's Timeloop stage maps the operator's largest loop -
// the sequence dimension L - spatially across cores and keeps the (h, g)
// sweep temporal inside each core, producing l-major per-core trace files
// (paper Fig 6 / Â§6.2.2: the fastest axis stays a whole cache line per
// vector core and >= 64B of L sits in the innermost L1 temporal level).
// Under the static per-core dispatch this is the LHG thread-block order;
// the wave-preserving dispatch interleaves the G blocks of one KV tile
// across cores (HLG), which is what exposes GQA merge locality to the
// MSHRs. Other orders remain available through Workload::with_mapping
// and are compared in bench/ablation_trace_order.
TbOrder order_for(TbDispatch dispatch) {
  return dispatch == TbDispatch::kStaticBlocked ? TbOrder::kLHG
                                                : TbOrder::kHLG;
}
}  // namespace

Workload Workload::logit(const ModelShape& model, std::uint64_t seq_len,
                         const SimConfig& cfg) {
  return from_spec(OperatorSpec::logit(model, seq_len), cfg);
}

Workload Workload::attend(const ModelShape& model, std::uint64_t seq_len,
                          const SimConfig& cfg) {
  return from_spec(OperatorSpec::attend(model, seq_len), cfg);
}

Workload Workload::gemv(std::uint64_t rows, std::uint32_t cols,
                        const SimConfig& cfg) {
  return from_spec(OperatorSpec::gemv(rows, cols), cfg);
}

Workload Workload::from_spec(OperatorSpec op, const SimConfig& cfg) {
  op.validate();
  Workload wl;
  wl.op = std::move(op);
  wl.mapping = Mapper().search(wl.op, cfg.core, cfg.llc).mapping;
  wl.mapping.order = order_for(cfg.core.tb_dispatch);
  return wl;
}

Workload Workload::with_mapping(OperatorSpec op, Mapping m) {
  m.validate(op);
  return Workload{std::move(op), m};
}

SimStats run_simulation(const SimConfig& cfg, const Workload& wl) {
  TraceGen gen(wl.op, wl.mapping);
  System sys(cfg, gen);
  return sys.run();
}

std::vector<ExperimentResult> run_experiments(
    std::span<const ExperimentSpec> specs, std::size_t threads,
    bool verbose) {
  ThreadPool pool(threads);
  std::vector<std::future<ExperimentResult>> futures;
  futures.reserve(specs.size());
  for (const ExperimentSpec& spec : specs) {
    futures.push_back(pool.submit([&spec]() {
      // lint:allow(wallclock): wall_seconds reports host runtime; sim state is cycle-driven
      const auto t0 = std::chrono::steady_clock::now();
      ExperimentResult r;
      r.name = spec.name;
      r.stats = run_simulation(spec.cfg, spec.workload);
      r.wall_seconds =
          // lint:allow(wallclock): wall_seconds reports host runtime; sim state is cycle-driven
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      return r;
    }));
  }
  std::vector<ExperimentResult> results;
  results.reserve(specs.size());
  for (auto& f : futures) {
    results.push_back(f.get());
    if (verbose) {
      std::cerr << "[exp] " << results.back().name << ": "
                << results.back().stats.cycles << " cycles ("
                << results.back().wall_seconds << "s wall)\n";
    }
  }
  return results;
}

SimConfig with_policies(const SimConfig& base, ThrottlePolicy thr,
                        ArbPolicy arb, std::optional<RespArbPolicy> resp_arb) {
  SimConfig cfg = base;
  cfg.throttle.policy = thr;
  cfg.arb.policy = arb;
  if (resp_arb) {
    cfg.llc.resp_arb = *resp_arb;
  } else if (arb == ArbPolicy::kCobrra) {
    // COBRRA's request-response arbitration: requests first, responses
    // preempt at the high-water mark (paper §3.3 / [3]).
    cfg.llc.resp_arb = RespArbPolicy::kRequestFirst;
  }
  return cfg;
}

Cycle PipelineResult::total_cycles() const {
  Cycle total = 0;
  for (const auto& r : ops) total += r.stats.cycles;
  return total;
}

double PipelineResult::total_seconds() const {
  double total = 0.0;
  for (const auto& r : ops) total += r.stats.seconds();
  return total;
}

PipelineResult run_pipeline(const SimConfig& cfg,
                            std::span<const Workload> ops, bool verbose) {
  PipelineResult result;
  result.ops.reserve(ops.size());
  for (const Workload& wl : ops) {
    // lint:allow(wallclock): wall_seconds reports host runtime; sim state is cycle-driven
    const auto t0 = std::chrono::steady_clock::now();
    ExperimentResult r;
    r.name = to_string(wl.op.kind) + "/" + wl.op.model.name;
    r.stats = run_simulation(cfg, wl);
    r.wall_seconds =
        // lint:allow(wallclock): wall_seconds reports host runtime; sim state is cycle-driven
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (verbose) {
      std::cerr << "[pipeline] " << r.name << ": " << r.stats.cycles
                << " cycles\n";
    }
    result.ops.push_back(std::move(r));
  }
  return result;
}

std::vector<Workload> decode_attention_step(const ModelShape& model,
                                            std::uint64_t seq_len,
                                            const SimConfig& cfg) {
  return {Workload::logit(model, seq_len, cfg),
          Workload::attend(model, seq_len, cfg)};
}

}  // namespace llamcat
