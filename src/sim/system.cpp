#include "sim/system.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <unordered_map>

namespace llamcat {

System::System(const SimConfig& cfg, const ITbSource& source,
               const IRequestTagger* tagger)
    : cfg_(cfg),
      scheduler_(source, cfg.core.num_cores, cfg.core.tb_dispatch,
                 cfg.core.request_dispatch),
      slice_map_(cfg.llc),
      net_(cfg.noc, cfg.core.num_cores, cfg.llc.num_slices),
      dram_(cfg.dram, cfg.core_hz),
      throttle_(make_throttle_controller(cfg.throttle, cfg.core)),
      tagger_(tagger) {
  cfg_.validate();
  const char* no_fp = std::getenv("LLAMCAT_NO_FASTPATH");
  fast_path_ = !(no_fp != nullptr && no_fp[0] == '1');
  if (tagger_ != nullptr) {
    const std::uint32_t n = scheduler_.num_requests();
    req_started_.assign(n, false);
    req_first_dispatch_.assign(n, 0);
    req_last_complete_.assign(n, 0);
    scheduler_.set_flight_observer(this);
  }
  cores_.reserve(cfg_.core.num_cores);
  for (std::uint32_t c = 0; c < cfg_.core.num_cores; ++c) {
    cores_.push_back(std::make_unique<VectorCore>(
        cfg_.core, cfg_.l1, static_cast<CoreId>(c), cfg_.seed + c));
    cores_.back()->bind(&scheduler_);
    cores_.back()->set_fast_path(fast_path_);
  }
  slices_.reserve(cfg_.llc.num_slices);
  for (std::uint32_t s = 0; s < cfg_.llc.num_slices; ++s) {
    slices_.push_back(std::make_unique<LlcSlice>(
        cfg_.llc, cfg_.arb, s, cfg_.core.num_cores, cfg_.seed + 1000 + s));
    slices_.back()->set_tagger(tagger_);
    slices_.back()->set_fast_path(fast_path_);
  }
  dram_.on_read_complete = [this](const DramCompletion& d) {
    slices_[d.payload]->on_dram_fill(d.line_addr);
  };
}

void System::deliver_responses() {
  for (auto& core : cores_) {
    while (const MemResponse* r = net_.peek_response(core->id(), cycle_)) {
      core->on_load_fill(r->line_addr);
      net_.pop_response(core->id());
    }
  }
}

void System::inject_core_traffic() {
  // Rotate the starting core so no core gets a structural priority.
  const std::uint32_t n = cfg_.core.num_cores;
  const std::uint32_t start = static_cast<std::uint32_t>(cycle_ % n);
  for (std::uint32_t i = 0; i < n; ++i) {
    VectorCore& core = *cores_[(start + i) % n];
    const auto out = core.peek_outgoing();
    if (!out) continue;
    const std::uint32_t slice = slice_map_.slice_of(out->line_addr);
    if (!net_.can_send_request(slice)) continue;  // backpressure
    MemRequest req;
    req.line_addr = out->line_addr;
    req.type = out->type;
    req.core = core.id();
    req.req_id = out->type == AccessType::kStore ? kStoreReqId : 0;
    req.seq = seq_++;
    req.issue_cycle = cycle_;
    net_.send_request(slice, req, cycle_);
    core.pop_outgoing();
  }
}

void System::deliver_slice_requests() {
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    while (slices_[s]->can_accept_request()) {
      const MemRequest* req = net_.peek_request(s, cycle_);
      if (req == nullptr) break;
      slices_[s]->push_request(*req, cycle_);
      net_.pop_request(s);
    }
  }
}

void System::aggregate_progress(std::vector<std::uint64_t>& out) const {
  out.assign(cfg_.core.num_cores, 0);
  for (const auto& slice : slices_) {
    const auto& p = slice->arbiter().progress();
    for (std::size_t c = 0; c < out.size(); ++c) out[c] += p[c];
  }
}

void System::sample_throttling() {
  const auto& tc = cfg_.throttle;
  if (cfg_.throttle.policy == ThrottlePolicy::kNone) return;
  if (cycle_ == 0 || cycle_ % tc.sub_period != 0) return;

  // Sub-period: per-core counters (member scratch, no per-sample allocs).
  samples_scratch_.clear();
  first_tb_scratch_.clear();
  samples_scratch_.reserve(cores_.size());
  first_tb_scratch_.reserve(cores_.size());
  for (auto& core : cores_) {
    const CoreSample s = core->take_sample();
    total_c_mem_ += s.c_mem;
    total_c_idle_ += s.c_idle;
    samples_scratch_.push_back(s);
    first_tb_scratch_.push_back(core->first_tb_report());
  }
  throttle_->on_sub_period(samples_scratch_, first_tb_scratch_);

  // Global period: contention classification + gear move.
  if (cycle_ % tc.sampling_period == 0) {
    Cycle stall_total = 0;
    for (const auto& slice : slices_) stall_total += slice->stall_cycles();
    const double t_cs =
        static_cast<double>(stall_total - prev_stall_total_) /
        (static_cast<double>(tc.sampling_period) * slices_.size());
    prev_stall_total_ = stall_total;
    global_scratch_.t_cs = t_cs;
    aggregate_progress(global_scratch_.progress);
    throttle_->on_global_period(global_scratch_);
  }

  for (auto& core : cores_) {
    core->set_max_tb(throttle_->max_tb(core->id()));
  }
}

void System::step() {
  ++cycle_;
  deliver_responses();
  for (auto& core : cores_) core->tick(cycle_);
  inject_core_traffic();
  deliver_slice_requests();
  for (auto& slice : slices_) {
    if (slice->frozen_tick(cycle_)) continue;  // no response can be ready
    slice->tick(cycle_, dram_);
    resp_scratch_.clear();
    slice->drain_responses(cycle_, resp_scratch_);
    for (const MemResponse& r : resp_scratch_) {
      net_.send_response(r, cycle_);
    }
  }
  dram_.tick_core_cycle();
  sample_throttling();
}

// Flight observation: the scheduler fires these from inside the core ticks
// of step(), where cycle_ already holds the step's cycle - the recorded
// cycles are identical to the old end-of-step scan.
void System::on_first_dispatch(std::uint32_t req_index) {
  req_started_[req_index] = true;
  req_first_dispatch_[req_index] = cycle_;
}

void System::on_request_complete(std::uint32_t req_index) {
  req_last_complete_[req_index] = cycle_;
}

bool System::done() const {
  if (!scheduler_.all_complete()) return false;
  for (const auto& core : cores_) {
    if (!core->fully_idle()) return false;
  }
  if (!net_.idle()) return false;
  for (const auto& slice : slices_) {
    if (!slice->drained()) return false;
  }
  return dram_.idle();
}

std::uint64_t System::inject_work() {
  const std::uint64_t added = scheduler_.sync_with_source();
  if (added == 0) return 0;
  const std::uint32_t n = scheduler_.num_requests();
  if (tagger_ != nullptr && req_started_.size() < n) {
    req_started_.resize(n, false);
    req_first_dispatch_.resize(n, 0);
    req_last_complete_.resize(n, 0);
  }
  for (auto& core : cores_) core->sync_requests(n);
  for (auto& slice : slices_) slice->sync_tagger_requests();
  return added;
}

Cycle System::next_wake(bool has_hook) {
  const Cycle now = cycle_;
  const Cycle no_skip = now + 1;
  Cycle wake = kNeverCycle;

  // Admission hook: skip at most to the hint its latest invocation
  // published (elided invocations in between are no-ops by the wake-hint
  // contract; a hook that never hints leaves wake_hint_ at 0 = no skip).
  if (has_hook) {
    if (wake_hint_ <= no_skip) return no_skip;
    wake = std::min(wake, wake_hint_);
  }

  // Throttle sampling boundaries are real steps: take_sample/set_max_tb
  // must run there, with the bulk frozen deltas already applied.
  if (cfg_.throttle.policy != ThrottlePolicy::kNone) {
    const Cycle sub = cfg_.throttle.sub_period;
    const Cycle next_sub = (now / sub + 1) * sub;
    if (next_sub <= no_skip) return no_skip;
    wake = std::min(wake, next_sub);
    const Cycle sp = cfg_.throttle.sampling_period;
    const Cycle next_sp = (now / sp + 1) * sp;
    if (next_sp <= no_skip) return no_skip;
    wake = std::min(wake, next_sp);
  }

  // DRAM. A write-only backlog produces no completion events but gates
  // done(): step it cycle by cycle. Read work bounds the wake so that no
  // completion can fire inside the skip window (the DRAM domain advances
  // at most one tick per core cycle).
  if (!dram_.idle() && !dram_.has_read_work()) return no_skip;
  if (dram_.has_read_work()) {
    const DramTick gap = dram_.next_read_event() - dram_.now();
    if (gap <= 1) return no_skip;
    wake = std::min(wake, now + gap);
  }

  // Cores: inbound NoC responses, then the core's own frozen profile, then
  // outbound traffic (with a credit it injects next cycle; without one, the
  // credit release is a slice-side event already covered below).
  core_prof_.resize(cores_.size());
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    const Cycle rr = net_.next_response_ready(cores_[c]->id());
    if (rr != kNeverCycle) {
      if (rr <= no_skip) return no_skip;
      wake = std::min(wake, rr);
    }
    core_prof_[c] = cores_[c]->wait_profile(now);
    if (core_prof_[c].busy) return no_skip;
    wake = std::min(wake, core_prof_[c].next_event);
    if (const auto out = cores_[c]->peek_outgoing()) {
      if (net_.can_send_request(slice_map_.slice_of(out->line_addr))) {
        return no_skip;
      }
    }
  }

  // Slices: inbound NoC requests (a matured head delivers next cycle iff
  // the slice has queue room; a full slice unfreezes only through its own
  // profile), then the slice's frozen profile.
  slice_prof_.resize(slices_.size());
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    const Cycle rr = net_.next_request_ready(static_cast<std::uint32_t>(s));
    if (rr != kNeverCycle) {
      if (rr <= no_skip) {
        if (slices_[s]->can_accept_request()) return no_skip;
      } else {
        wake = std::min(wake, rr);
      }
    }
    slice_prof_[s] = slices_[s]->wait_profile(now);
    if (slice_prof_[s].busy) return no_skip;
    wake = std::min(wake, slice_prof_[s].next_event);
  }

  // Nothing actionable: either the machine is done (caller checked) or it
  // is deadlocked - clamp to the guard so the throw fires at the exact
  // cycle the plain path would have reached.
  if (wake == kNeverCycle) wake = cfg_.max_cycles + 1;
  return wake;
}

void System::fast_forward(Cycle cycles) {
  for (std::size_t c = 0; c < cores_.size(); ++c) {
    cores_[c]->apply_skip(cycles, core_prof_[c]);
  }
  for (std::size_t s = 0; s < slices_.size(); ++s) {
    slices_[s]->apply_skip(cycles, slice_prof_[s]);
  }
  // The DRAM clock domain advances normally (refresh cadence, queue
  // occupancy sampling and FR-FCFS scheduling are exact); the wake bound
  // guarantees no read completion fires inside the window. A fully idle
  // DRAM system (the common case in admission gaps) moves in closed form.
  if (dram_.idle()) {
    dram_.skip_idle_cycles(cycles);
  } else {
    for (Cycle i = 0; i < cycles; ++i) dram_.tick_core_cycle();
  }
  cycle_ += cycles;
#ifndef NDEBUG
  for (const auto& slice : slices_) {
    assert(slice->fills_pending() == 0 && "DRAM fill fired during a skip");
  }
#endif
}

SimStats System::run(const AdmissionHook& admission) {
  // Failed skip attempts back off exponentially (2..16 cycles): a machine
  // that is steadily busy stops paying for next_wake() almost entirely,
  // while a freeze window that opens during the back-off is entered at
  // most 16 cycles late - skipping less is always safe, never wrong.
  Cycle retry_at = 0;
  std::uint32_t fail_streak = 0;
  // LLAMCAT_FASTPATH_STATS=1 prints skip effectiveness to stderr (steps
  // taken, windows skipped, cycles skipped) - a debugging aid only; it
  // never touches simulation state.
  const bool fp_stats = [] {
    const char* e = std::getenv("LLAMCAT_FASTPATH_STATS");
    return e != nullptr && e[0] == '1';
  }();
  std::uint64_t n_steps = 0, n_windows = 0, n_skipped = 0;
  while (true) {
    if (admission) {
      wake_hint_ = 0;  // hooks must re-publish a hint on every invocation
      admission(*this, cycle_);
    }
    if (done()) break;
    if (fast_path_ && cycle_ >= retry_at) {
      const Cycle wake = next_wake(static_cast<bool>(admission));
      if (wake > cycle_ + 1) {
        if (fp_stats) {
          ++n_windows;
          n_skipped += wake - cycle_ - 1;
        }
        fast_forward(wake - cycle_ - 1);
        fail_streak = 0;
      } else {
        if (fail_streak < 4) ++fail_streak;
        retry_at = cycle_ + (Cycle{1} << fail_streak);
      }
    }
    step();
    ++n_steps;
    if (cycle_ > cfg_.max_cycles) {
      throw std::runtime_error("System::run exceeded max_cycles (deadlock?)");
    }
  }
  if (fp_stats) {
    std::fprintf(stderr,
                 "[fastpath] cycles=%llu stepped=%llu skipped=%llu "
                 "windows=%llu avg_window=%.1f\n",
                 static_cast<unsigned long long>(cycle_),
                 static_cast<unsigned long long>(n_steps),
                 static_cast<unsigned long long>(n_skipped),
                 static_cast<unsigned long long>(n_windows),
                 n_windows ? static_cast<double>(n_skipped) / n_windows : 0.0);
  }
  return collect_stats();
}

SimStats System::collect_stats() const {
  SimStats s;
  s.cycles = cycle_;
  s.core_hz = cfg_.core_hz;
  s.thread_blocks = scheduler_.completed();

  double mshr_util = 0.0;
  Cycle stall_total = 0;
  for (const auto& slice : slices_) {
    s.counters.merge(slice->stats());
    mshr_util += slice->mshr().avg_entry_utilization();
    stall_total += slice->stall_cycles();
  }
  s.mshr_entry_util = mshr_util / static_cast<double>(slices_.size());
  if (cycle_ > 0) {
    s.t_cs = static_cast<double>(stall_total) /
             (static_cast<double>(cycle_) * slices_.size());
  }

  for (const auto& core : cores_) {
    s.counters.merge(core->l1_stats());
    s.instructions += core->instructions_issued();
  }
  s.ipc = cycle_ > 0 ? static_cast<double>(s.instructions) /
                           static_cast<double>(cycle_)
                     : 0.0;

  s.counters.merge(dram_.stats());
  s.dram_reads = s.counters.get("dram.reads");
  s.dram_writes = s.counters.get("dram.writes");

  const std::uint64_t lookups = s.counters.get("llc.lookups");
  const std::uint64_t hits = s.counters.get("llc.hits");
  const std::uint64_t misses = s.counters.get("llc.misses");
  const std::uint64_t merges = s.counters.get("llc.mshr_hits");
  s.l2_hit_rate = lookups ? static_cast<double>(hits) / lookups : 0.0;
  s.mshr_hit_rate = misses ? static_cast<double>(merges) / misses : 0.0;
  s.dram_bw_gbps =
      s.seconds() > 0
          ? static_cast<double>(dram_.bytes_transferred()) / s.seconds() / 1e9
          : 0.0;
  s.counters.set("core.c_mem_total", total_c_mem_);
  s.counters.set("core.c_idle_total", total_c_idle_);

  if (tagger_ != nullptr) {
    // The scheduler and the tagger both index requests densely but may
    // disagree on order; reconcile through the external request id with a
    // single id->index map instead of a per-request rescan. The emitted
    // order follows the scheduler (first dispatch-list appearance).
    std::unordered_map<std::uint32_t, std::uint32_t> id_to_tagger;
    id_to_tagger.reserve(tagger_->num_requests());
    for (std::uint32_t t = 0; t < tagger_->num_requests(); ++t) {
      id_to_tagger.emplace(tagger_->request_id_at(t), t);
    }
    std::vector<std::uint32_t> tagger_index(scheduler_.num_requests(),
                                            kNoRequest);
    for (std::uint32_t r = 0; r < scheduler_.num_requests(); ++r) {
      const auto it = id_to_tagger.find(scheduler_.request_id_at(r));
      if (it != id_to_tagger.end()) tagger_index[r] = it->second;
    }
    s.per_request.reserve(scheduler_.num_requests());
    for (std::uint32_t r = 0; r < scheduler_.num_requests(); ++r) {
      RequestSlice rs;
      rs.request_id = scheduler_.request_id_at(r);
      rs.thread_blocks = scheduler_.completed_of(r);
      if (req_started_[r] && req_last_complete_[r] >= req_first_dispatch_[r]) {
        rs.cycles_in_flight =
            req_last_complete_[r] - req_first_dispatch_[r] + 1;
        rs.first_dispatch_cycle = req_first_dispatch_[r];
        rs.last_complete_cycle = req_last_complete_[r];
      }
      for (const auto& core : cores_) {
        rs.instructions += core->issued_by_request()[r];
      }
      if (tagger_index[r] != kNoRequest) {
        for (const auto& slice : slices_) {
          const auto& rc = slice->request_counters()[tagger_index[r]];
          rs.llc_lookups += rc.lookups;
          rs.llc_hits += rc.hits;
          rs.llc_misses += rc.misses;
          rs.llc_mshr_hits += rc.mshr_hits;
          rs.dram_reads += rc.dram_reads;
          rs.dram_writes += rc.dram_writes;
        }
      }
      s.per_request.push_back(rs);
    }
  }
  return s;
}

}  // namespace llamcat
