#include "sim/system.hpp"

#include <stdexcept>

namespace llamcat {

System::System(const SimConfig& cfg, const ITbSource& source,
               const IRequestTagger* tagger)
    : cfg_(cfg),
      scheduler_(source, cfg.core.num_cores, cfg.core.tb_dispatch,
                 cfg.core.request_dispatch),
      slice_map_(cfg.llc),
      net_(cfg.noc, cfg.core.num_cores, cfg.llc.num_slices),
      dram_(cfg.dram, cfg.core_hz),
      throttle_(make_throttle_controller(cfg.throttle, cfg.core)),
      tagger_(tagger) {
  cfg_.validate();
  if (tagger_ != nullptr) {
    const std::uint32_t n = scheduler_.num_requests();
    req_started_.assign(n, false);
    req_first_dispatch_.assign(n, 0);
    req_last_complete_.assign(n, 0);
    req_prev_completed_.assign(n, 0);
  }
  cores_.reserve(cfg_.core.num_cores);
  for (std::uint32_t c = 0; c < cfg_.core.num_cores; ++c) {
    cores_.push_back(std::make_unique<VectorCore>(
        cfg_.core, cfg_.l1, static_cast<CoreId>(c), cfg_.seed + c));
    cores_.back()->bind(&scheduler_);
  }
  slices_.reserve(cfg_.llc.num_slices);
  for (std::uint32_t s = 0; s < cfg_.llc.num_slices; ++s) {
    slices_.push_back(std::make_unique<LlcSlice>(
        cfg_.llc, cfg_.arb, s, cfg_.core.num_cores, cfg_.seed + 1000 + s));
    slices_.back()->set_tagger(tagger_);
  }
  dram_.on_read_complete = [this](const DramCompletion& d) {
    slices_[d.payload]->on_dram_fill(d.line_addr);
  };
}

void System::deliver_responses() {
  for (auto& core : cores_) {
    while (const MemResponse* r = net_.peek_response(core->id(), cycle_)) {
      core->on_load_fill(r->line_addr);
      net_.pop_response(core->id());
    }
  }
}

void System::inject_core_traffic() {
  // Rotate the starting core so no core gets a structural priority.
  const std::uint32_t n = cfg_.core.num_cores;
  const std::uint32_t start = static_cast<std::uint32_t>(cycle_ % n);
  for (std::uint32_t i = 0; i < n; ++i) {
    VectorCore& core = *cores_[(start + i) % n];
    const auto out = core.peek_outgoing();
    if (!out) continue;
    const std::uint32_t slice = slice_map_.slice_of(out->line_addr);
    if (!net_.can_send_request(slice)) continue;  // backpressure
    MemRequest req;
    req.line_addr = out->line_addr;
    req.type = out->type;
    req.core = core.id();
    req.req_id = out->type == AccessType::kStore ? kStoreReqId : 0;
    req.seq = seq_++;
    req.issue_cycle = cycle_;
    net_.send_request(slice, req, cycle_);
    core.pop_outgoing();
  }
}

void System::deliver_slice_requests() {
  for (std::uint32_t s = 0; s < slices_.size(); ++s) {
    while (slices_[s]->can_accept_request()) {
      const MemRequest* req = net_.peek_request(s, cycle_);
      if (req == nullptr) break;
      slices_[s]->push_request(*req, cycle_);
      net_.pop_request(s);
    }
  }
}

std::vector<std::uint64_t> System::aggregate_progress() const {
  std::vector<std::uint64_t> progress(cfg_.core.num_cores, 0);
  for (const auto& slice : slices_) {
    const auto& p = slice->arbiter().progress();
    for (std::size_t c = 0; c < progress.size(); ++c) progress[c] += p[c];
  }
  return progress;
}

void System::sample_throttling() {
  const auto& tc = cfg_.throttle;
  if (cfg_.throttle.policy == ThrottlePolicy::kNone) return;
  if (cycle_ == 0 || cycle_ % tc.sub_period != 0) return;

  // Sub-period: per-core counters.
  std::vector<CoreSample> samples;
  std::vector<std::optional<FirstTbReport>> first_tb;
  samples.reserve(cores_.size());
  first_tb.reserve(cores_.size());
  for (auto& core : cores_) {
    const CoreSample s = core->take_sample();
    total_c_mem_ += s.c_mem;
    total_c_idle_ += s.c_idle;
    samples.push_back(s);
    first_tb.push_back(core->first_tb_report());
  }
  throttle_->on_sub_period(samples, first_tb);

  // Global period: contention classification + gear move.
  if (cycle_ % tc.sampling_period == 0) {
    Cycle stall_total = 0;
    for (const auto& slice : slices_) stall_total += slice->stall_cycles();
    const double t_cs =
        static_cast<double>(stall_total - prev_stall_total_) /
        (static_cast<double>(tc.sampling_period) * slices_.size());
    prev_stall_total_ = stall_total;
    GlobalSample gs;
    gs.t_cs = t_cs;
    gs.progress = aggregate_progress();
    throttle_->on_global_period(gs);
  }

  for (auto& core : cores_) {
    core->set_max_tb(throttle_->max_tb(core->id()));
  }
}

void System::step() {
  ++cycle_;
  deliver_responses();
  for (auto& core : cores_) core->tick(cycle_);
  inject_core_traffic();
  deliver_slice_requests();
  for (auto& slice : slices_) {
    slice->tick(cycle_, dram_);
    resp_scratch_.clear();
    slice->drain_responses(cycle_, resp_scratch_);
    for (const MemResponse& r : resp_scratch_) {
      net_.send_response(r, cycle_);
    }
  }
  dram_.tick_core_cycle();
  sample_throttling();
  if (tagger_ != nullptr) track_request_flight();
}

void System::track_request_flight() {
  for (std::uint32_t r = 0; r < scheduler_.num_requests(); ++r) {
    if (!req_started_[r] && scheduler_.dispatched_of(r) > 0) {
      req_started_[r] = true;
      req_first_dispatch_[r] = cycle_;
    }
    const std::uint64_t done = scheduler_.completed_of(r);
    if (done != req_prev_completed_[r]) {
      req_prev_completed_[r] = done;
      req_last_complete_[r] = cycle_;
    }
  }
}

bool System::done() const {
  if (!scheduler_.all_complete()) return false;
  for (const auto& core : cores_) {
    if (!core->fully_idle()) return false;
  }
  if (!net_.idle()) return false;
  for (const auto& slice : slices_) {
    if (!slice->drained()) return false;
  }
  return dram_.idle();
}

std::uint64_t System::inject_work() {
  const std::uint64_t added = scheduler_.sync_with_source();
  if (added == 0) return 0;
  const std::uint32_t n = scheduler_.num_requests();
  if (tagger_ != nullptr && req_started_.size() < n) {
    req_started_.resize(n, false);
    req_first_dispatch_.resize(n, 0);
    req_last_complete_.resize(n, 0);
    req_prev_completed_.resize(n, 0);
  }
  for (auto& core : cores_) core->sync_requests(n);
  for (auto& slice : slices_) slice->sync_tagger_requests();
  return added;
}

SimStats System::run(const AdmissionHook& admission) {
  while (true) {
    if (admission) admission(*this, cycle_);
    if (done()) break;
    step();
    if (cycle_ > cfg_.max_cycles) {
      throw std::runtime_error("System::run exceeded max_cycles (deadlock?)");
    }
  }
  return collect_stats();
}

SimStats System::collect_stats() const {
  SimStats s;
  s.cycles = cycle_;
  s.core_hz = cfg_.core_hz;
  s.thread_blocks = scheduler_.completed();

  double mshr_util = 0.0;
  Cycle stall_total = 0;
  for (const auto& slice : slices_) {
    s.counters.merge(slice->stats());
    mshr_util += slice->mshr().avg_entry_utilization();
    stall_total += slice->stall_cycles();
  }
  s.mshr_entry_util = mshr_util / static_cast<double>(slices_.size());
  if (cycle_ > 0) {
    s.t_cs = static_cast<double>(stall_total) /
             (static_cast<double>(cycle_) * slices_.size());
  }

  for (const auto& core : cores_) {
    s.counters.merge(core->l1_stats());
    s.instructions += core->instructions_issued();
  }
  s.ipc = cycle_ > 0 ? static_cast<double>(s.instructions) /
                           static_cast<double>(cycle_)
                     : 0.0;

  s.counters.merge(dram_.stats());
  s.dram_reads = s.counters.get("dram.reads");
  s.dram_writes = s.counters.get("dram.writes");

  const std::uint64_t lookups = s.counters.get("llc.lookups");
  const std::uint64_t hits = s.counters.get("llc.hits");
  const std::uint64_t misses = s.counters.get("llc.misses");
  const std::uint64_t merges = s.counters.get("llc.mshr_hits");
  s.l2_hit_rate = lookups ? static_cast<double>(hits) / lookups : 0.0;
  s.mshr_hit_rate = misses ? static_cast<double>(merges) / misses : 0.0;
  s.dram_bw_gbps =
      s.seconds() > 0
          ? static_cast<double>(dram_.bytes_transferred()) / s.seconds() / 1e9
          : 0.0;
  s.counters.set("core.c_mem_total", total_c_mem_);
  s.counters.set("core.c_idle_total", total_c_idle_);

  if (tagger_ != nullptr) {
    // The scheduler and the tagger both index requests densely but may
    // disagree on order; reconcile through the external request id. The
    // emitted order follows the scheduler (first dispatch-list appearance).
    std::vector<std::uint32_t> tagger_index(scheduler_.num_requests(),
                                            kNoRequest);
    for (std::uint32_t r = 0; r < scheduler_.num_requests(); ++r) {
      const std::uint32_t id = scheduler_.request_id_at(r);
      for (std::uint32_t t = 0; t < tagger_->num_requests(); ++t) {
        if (tagger_->request_id_at(t) == id) {
          tagger_index[r] = t;
          break;
        }
      }
    }
    s.per_request.reserve(scheduler_.num_requests());
    for (std::uint32_t r = 0; r < scheduler_.num_requests(); ++r) {
      RequestSlice rs;
      rs.request_id = scheduler_.request_id_at(r);
      rs.thread_blocks = scheduler_.completed_of(r);
      if (req_started_[r] && req_last_complete_[r] >= req_first_dispatch_[r]) {
        rs.cycles_in_flight =
            req_last_complete_[r] - req_first_dispatch_[r] + 1;
        rs.first_dispatch_cycle = req_first_dispatch_[r];
        rs.last_complete_cycle = req_last_complete_[r];
      }
      for (const auto& core : cores_) {
        rs.instructions += core->issued_by_request()[r];
      }
      if (tagger_index[r] != kNoRequest) {
        for (const auto& slice : slices_) {
          const auto& rc = slice->request_counters()[tagger_index[r]];
          rs.llc_lookups += rc.lookups;
          rs.llc_hits += rc.hits;
          rs.llc_misses += rc.misses;
          rs.llc_mshr_hits += rc.mshr_hits;
          rs.dram_reads += rc.dram_reads;
          rs.dram_writes += rc.dram_writes;
        }
      }
      s.per_request.push_back(rs);
    }
  }
  return s;
}

}  // namespace llamcat
