#include "sim/options.hpp"

#include <charconv>
#include <sstream>
#include <utility>

namespace llamcat {

namespace {

/// Parses an unsigned integer; nullopt on any trailing garbage.
template <typename T>
std::optional<T> parse_uint(std::string_view s) {
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

/// "256,512,1024" -> vector of integers; nullopt on any bad entry (zero
/// entries are rejected unless `allow_zero` - arrival cycles may be 0,
/// sequence lengths and step counts may not).
std::optional<std::vector<std::uint64_t>> parse_uint_list(
    std::string_view s, bool allow_zero = false) {
  std::vector<std::uint64_t> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    const auto v = parse_uint<std::uint64_t>(s.substr(0, comma));
    if (!v || (*v == 0 && !allow_zero)) return std::nullopt;
    out.push_back(*v);
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
    if (s.empty()) return std::nullopt;  // trailing comma
  }
  if (out.empty()) return std::nullopt;
  return out;
}

std::optional<double> parse_double(std::string_view s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string(s), &pos);
    if (pos != s.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<ArbPolicy> arb_policy_from_string(std::string_view s) {
  if (s == "fcfs") return ArbPolicy::kFcfs;
  if (s == "B" || s == "b" || s == "balanced") return ArbPolicy::kBalanced;
  if (s == "MA" || s == "ma") return ArbPolicy::kMa;
  if (s == "BMA" || s == "bma") return ArbPolicy::kBma;
  if (s == "cobrra") return ArbPolicy::kCobrra;
  if (s == "mrpb") return ArbPolicy::kMrpb;
  if (s == "oracle") return ArbPolicy::kOracle;
  if (s == "random") return ArbPolicy::kRandom;
  return std::nullopt;
}

std::optional<ThrottlePolicy> throttle_policy_from_string(
    std::string_view s) {
  if (s == "unopt" || s == "none") return ThrottlePolicy::kNone;
  if (s == "dyncta") return ThrottlePolicy::kDyncta;
  if (s == "lcs") return ThrottlePolicy::kLcs;
  if (s == "dynmg") return ThrottlePolicy::kDynMg;
  return std::nullopt;
}

std::optional<RespArbPolicy> resp_arb_from_string(std::string_view s) {
  if (s == "response-first") return RespArbPolicy::kResponseFirst;
  if (s == "request-first") return RespArbPolicy::kRequestFirst;
  return std::nullopt;
}

std::optional<TbDispatch> dispatch_from_string(std::string_view s) {
  if (s == "static") return TbDispatch::kStaticBlocked;
  if (s == "wave") return TbDispatch::kPartitionedStealing;
  if (s == "global") return TbDispatch::kGlobalQueue;
  return std::nullopt;
}

std::optional<RequestDispatch> request_dispatch_from_string(
    std::string_view s) {
  if (s == "shared") return RequestDispatch::kShared;
  if (s == "interleave") return RequestDispatch::kInterleave;
  if (s == "partitioned") return RequestDispatch::kPartitioned;
  return std::nullopt;
}

std::optional<FuseOrder> fuse_order_from_string(std::string_view s) {
  if (s == "rr" || s == "round-robin") return FuseOrder::kRoundRobin;
  if (s == "concat") return FuseOrder::kConcat;
  return std::nullopt;
}

std::optional<ExecutionMode> execution_mode_from_string(std::string_view s) {
  if (s == "independent") return ExecutionMode::kIndependent;
  if (s == "coscheduled") return ExecutionMode::kCoScheduled;
  if (s == "continuous") return ExecutionMode::kContinuous;
  return std::nullopt;
}

std::optional<AdmitPolicy> admit_policy_from_string(std::string_view s) {
  if (s == "none") return AdmitPolicy::kNone;
  if (s == "fcfs") return AdmitPolicy::kFcfs;
  if (s == "srf" || s == "shortest" || s == "shortest-remaining") {
    return AdmitPolicy::kShortestRemaining;
  }
  return std::nullopt;
}

std::optional<KvEvictPolicy> kv_evict_policy_from_string(std::string_view s) {
  if (s == "none") return KvEvictPolicy::kNone;
  if (s == "cold-blocks" || s == "cold") return KvEvictPolicy::kColdBlocks;
  return std::nullopt;
}

std::optional<ReplPolicy> repl_policy_from_string(std::string_view s) {
  if (s == "lru") return ReplPolicy::kLru;
  if (s == "tree-plru" || s == "plru") return ReplPolicy::kTreePlru;
  if (s == "random") return ReplPolicy::kRandom;
  if (s == "srrip") return ReplPolicy::kSrrip;
  if (s == "fifo") return ReplPolicy::kFifo;
  return std::nullopt;
}

std::optional<BypassPolicy> bypass_policy_from_string(std::string_view s) {
  if (s == "none") return BypassPolicy::kNone;
  if (s == "all") return BypassPolicy::kAll;
  if (s == "prob" || s == "probabilistic") return BypassPolicy::kProbabilistic;
  if (s == "reuse" || s == "reuse-history") return BypassPolicy::kReuseHistory;
  return std::nullopt;
}

std::optional<ModelShape> model_from_string(std::string_view s) {
  if (s == "llama3-70b" || s == "70b") return ModelShape::llama3_70b();
  if (s == "llama3-405b" || s == "405b") return ModelShape::llama3_405b();
  if (s == "llama3-8b" || s == "8b") return ModelShape::llama3_8b();
  if (s == "gemma2-27b" || s == "27b") return ModelShape::gemma2_27b();
  if (s == "qwen2-72b" || s == "72b") return ModelShape::qwen2_72b();
  return std::nullopt;
}

std::optional<TrafficProcess> traffic_process_from_string(
    std::string_view s) {
  if (s == "poisson") return TrafficProcess::kPoisson;
  if (s == "bursty") return TrafficProcess::kBursty;
  if (s == "diurnal") return TrafficProcess::kDiurnal;
  return std::nullopt;
}

std::optional<TrafficDist> traffic_dist_from_string(std::string_view s) {
  if (s == "uniform" || s == "U") return TrafficDist::kUniform;
  if (s == "lognormal" || s == "LN") return TrafficDist::kLognormal;
  return std::nullopt;
}

std::optional<PolicyCombo> policy_combo_from_string(std::string_view s) {
  PolicyCombo combo;
  const std::size_t plus = s.find('+');
  const std::string_view thr_part = s.substr(0, plus);
  const auto thr = throttle_policy_from_string(thr_part);
  if (!thr) {
    // Allow a bare arbitration policy ("BMA" == "unopt+BMA").
    if (plus != std::string_view::npos) return std::nullopt;
    const auto arb_only = arb_policy_from_string(s);
    if (!arb_only) return std::nullopt;
    combo.arb = *arb_only;
    return combo;
  }
  combo.throttle = *thr;
  if (plus != std::string_view::npos) {
    const auto arb = arb_policy_from_string(s.substr(plus + 1));
    if (!arb) return std::nullopt;
    combo.arb = *arb;
  }
  return combo;
}

std::string cli_usage() {
  return R"(llamcat_cli - run one LLaMCAT simulation (Table 5 machine by default)

usage: llamcat_cli [--flag=value ...]

workload
  --model=NAME       llama3-70b (default) | llama3-405b | llama3-8b |
                     gemma2-27b | qwen2-72b
  --op=KIND          logit (default) | attend | gemv | decode | batch
                     (decode = Logit followed by Attend; batch = the
                     scenario subsystem's multi-request decode pass)
  --seq=N            sequence length L (default 4096)
  --gemv-rows=N      gemv only: weight-matrix rows (default 8192)
  --gemv-cols=N      gemv only: weight-matrix columns (default 4096)

batch scenario (--op=batch)
  --requests=N       concurrent decode requests (default 2)
  --layers=N         decode layers per request (default 2)
  --seqs=A,B,...     per-request sequence lengths (overrides --requests and
                     --seq; one request per entry)
  --no-gemv          drop the per-layer projection/FFN GEMV stage
  --mode=M           independent (default): every operator in its own
                     System, stats summed | coscheduled: one fused System
                     per layer-stage wave - requests contend for the
                     shared LLC, per-request stats by address attribution |
                     continuous: one long-lived streaming System - each
                     request advances the moment its own stage completes,
                     arrivals are admitted mid-pass, per-request latency
                     and makespan are reported
  --arrivals=A,B,..  continuous only: per-request arrival cycles (one per
                     request, or one value broadcast; default all 0)
  --steps=N[,M,..]   decode steps (tokens) per request (broadcast like
                     --arrivals; default 1)
  --admit-policy=P   continuous only: serving-queue admission discipline:
                     none (default: every arrival admitted unconditionally)
                     | fcfs (arrival order, head-of-line blocks on the KV
                     budget) | srf (shortest-remaining-first)
  --kv-budget=N      continuous only: aggregate peak-KV-footprint budget in
                     bytes (0 = unlimited); arrivals queue (never drop)
                     while the resident KV footprint would exceed it;
                     requires --admit-policy=fcfs|srf
  --preempt          continuous only: evict a running request at a stage
                     boundary when a much-shorter request co-runs (its KV
                     stays resident, it re-enters the serving queue);
                     requires --admit-policy=fcfs|srf
  --kv-evict=P       paged KV on preemption: none (default: preempted KV
                     stays resident, PR-4-exact) | cold-blocks (swap the
                     preempted request's cold KV blocks to a modeled host
                     tier - freeing budget bytes immediately - and charge
                     a refetch at resume); requires --preempt and a finite
                     --kv-budget
  --kv-block-bytes=N cold-blocks only: pager block size in bytes, a
                     multiple of 64 (default 64, the line granule)
  --refetch-cost=N   cold-blocks only: resume refetch price in cycles per
                     block (default block_bytes/8: an ~8 B/cycle modeled
                     host link)
  --kv-share=S       continuous only: cross-request KV prefix reuse: off
                     (default: every request's KV is private, byte-identical
                     to the pre-pool engine) | on (requests in the same
                     --prefix-groups group share the KV blocks of their
                     common prefix - each unique block charges the budget
                     once, eviction respects the block refcounts);
                     --kv-block-bytes sets the sharing granule
  --prefix-groups=G,..  kv-share only: per-request prefix-group id
                     (broadcast like --arrivals); requires --prefix-tokens
  --prefix-tokens=N,..  kv-share only: tokens of the shared prefix per
                     request (broadcast; 0 keeps that request private;
                     otherwise must not exceed the request's --seqs length)
  --interleave=I     co-admitted TB fusing: rr (default) | concat
  --req-dispatch=R   request-aware core dispatch for fused sources:
                     shared (default) | interleave | partitioned

open-loop traffic (--op=batch --mode=continuous; scenario/traffic.hpp)
  --traffic=P        generate the request list from a seeded arrival
                     process instead of hand-building it: poisson | bursty
                     | diurnal (--requests supplies the count; conflicts
                     with --seqs/--arrivals/--steps/--prefix-*)
  --traffic-seed=N   generator seed, independent of --seed (default 1)
  --traffic-gap=N    mean inter-arrival gap in cycles (default 20000; the
                     offered-load knob: rate = 1/gap)
  --traffic-seq=L,H  sequence-length range (default 64,512; both multiples
                     of the 32-token mapper granule)
  --traffic-seq-dist=D  uniform (default) | lognormal (clamped, log-space
                     median at the geometric midpoint of the range)
  --traffic-sigma=F  lognormal log-space sigma (default 0.5)
  --traffic-steps=L,H   decode-steps range (default 1,4)
  --traffic-groups=N Zipf-popular prefix groups (default 0 = private batch;
                     takes effect under --kv-share=on)
  --traffic-zipf=F   Zipf skew of group popularity (default 1.0)
  --traffic-share-pct=N  percent of requests carrying a prefix group
                     (default 75)

trace record/replay (versioned text format; docs/workloads.md)
  --trace-out=PATH   record the request list this run used as a trace
  --trace-in=PATH    replay a recorded trace as the batch (replaces
                     --traffic and every per-request workload flag)

policy
  --policy=COMBO     throttle+arbitration, e.g. dynmg+BMA, dyncta, unopt+MA,
                     BMA (bare arbitration = unopt+ARB; default unopt+fcfs)
  --resp-arb=P       response-first (default) | request-first
  --dispatch=D       static (default) | wave | global

machine overrides (defaults are the paper's Table 5)
  --cores=N          number of vector cores
  --llc-mb=N         total LLC capacity in MiB
  --slices=N         LLC slice count
  --mshr-entries=N   MSHR numEntry per slice
  --mshr-targets=N   MSHR numTarget per entry
  --repl=P           LLC replacement: lru | tree-plru | random | srrip | fifo
  --bypass=P         LLC fill bypass: none | all | prob | reuse
  --bypass-keep-p=F  keep probability for --bypass=prob (default 0.5)
  --seed=N           simulation seed (default 1)

output
  --csv=PATH         append-style CSV export of the run
  --json=PATH        JSON export (includes every counter)
  --digest           batch only: print nothing but the canonical
                     batch_stats_digest (two runs are equivalent iff their
                     digests match - the scripted replay check)
  --counters         print every merged component counter
  --energy           print the energy-model breakdown
  --verbose          progress to stderr
  --help             this text
)";
}

ParseResult parse_cli_options(const std::vector<std::string_view>& args) {
  ParseResult result;
  CliOptions opt;
  opt.cfg = SimConfig::table5();
  std::uint64_t llc_mb = opt.cfg.llc.size_bytes >> 20;

  auto fail = [&result](const std::string& msg) {
    result.error = msg;
    return result;
  };
  // Last --traffic-* knob seen, for the "requires --traffic" diagnostic.
  const char* traffic_knob = nullptr;

  for (const std::string_view arg : args) {
    if (arg == "--help" || arg == "-h") {
      result.help_requested = true;
      return result;
    }
    if (arg == "--counters") {
      opt.print_counters = true;
      continue;
    }
    if (arg == "--no-gemv") {
      opt.batch_gemv = false;
      continue;
    }
    if (arg == "--preempt") {
      opt.batch_preempt = true;
      continue;
    }
    if (arg == "--digest") {
      opt.digest_only = true;
      continue;
    }
    if (arg == "--energy") {
      opt.print_energy = true;
      continue;
    }
    if (arg == "--verbose") {
      opt.verbose = true;
      continue;
    }
    const std::size_t eq = arg.find('=');
    if (arg.substr(0, 2) != "--" || eq == std::string_view::npos) {
      return fail("unrecognized argument: " + std::string(arg));
    }
    const std::string_view key = arg.substr(2, eq - 2);
    const std::string_view val = arg.substr(eq + 1);

    if (key == "model") {
      const auto m = model_from_string(val);
      if (!m) return fail("unknown model: " + std::string(val));
      opt.model = *m;
    } else if (key == "op") {
      if (val != "logit" && val != "attend" && val != "gemv" &&
          val != "decode" && val != "batch") {
        return fail("unknown op: " + std::string(val));
      }
      opt.op = std::string(val);
    } else if (key == "seq") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0) return fail("bad --seq");
      opt.seq_len = *v;
    } else if (key == "gemv-rows") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0) return fail("bad --gemv-rows");
      opt.gemv_rows = *v;
    } else if (key == "gemv-cols") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) return fail("bad --gemv-cols");
      opt.gemv_cols = *v;
    } else if (key == "requests") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) {
        return fail("bad --requests: \"" + std::string(val) +
                    "\" (expect a positive request count)");
      }
      opt.batch_requests = *v;
    } else if (key == "layers") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) {
        return fail("bad --layers: \"" + std::string(val) +
                    "\" (expect a positive layer count)");
      }
      opt.batch_layers = *v;
    } else if (key == "seqs") {
      const auto v = parse_uint_list(val);
      if (!v) {
        return fail("bad --seqs: \"" + std::string(val) +
                    "\" (expect a comma-separated list of positive sequence "
                    "lengths, e.g. 256,512,1024)");
      }
      opt.batch_seq_lens = *v;
    } else if (key == "arrivals") {
      const auto v = parse_uint_list(val, /*allow_zero=*/true);
      if (!v) {
        return fail("bad --arrivals: \"" + std::string(val) +
                    "\" (expect a comma-separated list of arrival cycles, "
                    "e.g. 0,0,50000; zeros are allowed)");
      }
      opt.batch_arrivals = *v;
    } else if (key == "steps") {
      const auto v = parse_uint_list(val);
      if (!v) {
        return fail("bad --steps: \"" + std::string(val) +
                    "\" (expect a positive decode-step count or list, e.g. "
                    "4 or 4,1,2)");
      }
      for (const std::uint64_t steps : *v) {
        if (steps > 0xFFFFFFFFull) {
          return fail("bad --steps: " + std::to_string(steps) +
                      " exceeds the 32-bit decode-step limit");
        }
      }
      opt.batch_steps = *v;
    } else if (key == "mode") {
      const auto m = execution_mode_from_string(val);
      if (!m) return fail("unknown mode: " + std::string(val));
      opt.batch_mode = *m;
    } else if (key == "admit-policy") {
      const auto p = admit_policy_from_string(val);
      if (!p) {
        return fail("unknown admit-policy: \"" + std::string(val) +
                    "\" (expect none, fcfs or srf)");
      }
      opt.batch_admit = *p;
    } else if (key == "kv-budget") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v) {
        return fail("bad --kv-budget: \"" + std::string(val) +
                    "\" (expect a byte count; 0 = unlimited)");
      }
      opt.batch_kv_budget = *v;
    } else if (key == "kv-evict") {
      const auto p = kv_evict_policy_from_string(val);
      if (!p) {
        return fail("unknown kv-evict: \"" + std::string(val) +
                    "\" (expect none or cold-blocks)");
      }
      opt.batch_kv_evict = *p;
    } else if (key == "kv-block-bytes") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0 || *v % kLineBytes != 0) {
        return fail("bad --kv-block-bytes: \"" + std::string(val) +
                    "\" (expect a positive multiple of the " +
                    std::to_string(kLineBytes) + "-byte cache line)");
      }
      opt.batch_kv_block_bytes = *v;
    } else if (key == "refetch-cost") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0) {
        return fail("bad --refetch-cost: \"" + std::string(val) +
                    "\" (expect a positive cycles-per-block price; omit the "
                    "flag for the modeled host-link default)");
      }
      opt.batch_refetch_cost = *v;
    } else if (key == "kv-share") {
      if (val == "on") {
        opt.batch_kv_share = true;
      } else if (val == "off") {
        opt.batch_kv_share = false;
      } else {
        return fail("bad --kv-share: \"" + std::string(val) +
                    "\" (expect on or off)");
      }
    } else if (key == "prefix-groups") {
      const auto v = parse_uint_list(val, /*allow_zero=*/true);
      if (!v) {
        return fail("bad --prefix-groups: \"" + std::string(val) +
                    "\" (expect a comma-separated list of group ids, e.g. "
                    "0,0,1)");
      }
      opt.batch_prefix_groups = *v;
    } else if (key == "prefix-tokens") {
      const auto v = parse_uint_list(val, /*allow_zero=*/true);
      if (!v) {
        return fail("bad --prefix-tokens: \"" + std::string(val) +
                    "\" (expect a comma-separated list of shared-prefix "
                    "token counts; 0 keeps a request private)");
      }
      opt.batch_prefix_tokens = *v;
    } else if (key == "traffic") {
      const auto p = traffic_process_from_string(val);
      if (!p) {
        return fail("unknown traffic process: \"" + std::string(val) +
                    "\" (expect poisson, bursty or diurnal)");
      }
      opt.traffic = true;
      opt.traffic_process = *p;
    } else if (key == "traffic-seed") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v) return fail("bad --traffic-seed");
      opt.traffic_seed = *v;
      traffic_knob = "--traffic-seed";
    } else if (key == "traffic-gap") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0) {
        return fail("bad --traffic-gap: \"" + std::string(val) +
                    "\" (expect a positive mean inter-arrival gap in "
                    "cycles)");
      }
      opt.traffic_gap = *v;
      traffic_knob = "--traffic-gap";
    } else if (key == "traffic-seq") {
      const auto v = parse_uint_list(val);
      if (!v || v->size() != 2 || (*v)[0] > (*v)[1]) {
        return fail("bad --traffic-seq: \"" + std::string(val) +
                    "\" (expect LO,HI with LO <= HI, e.g. 64,512)");
      }
      opt.traffic_seq_min = (*v)[0];
      opt.traffic_seq_max = (*v)[1];
      traffic_knob = "--traffic-seq";
    } else if (key == "traffic-seq-dist") {
      const auto d = traffic_dist_from_string(val);
      if (!d) {
        return fail("unknown traffic-seq-dist: \"" + std::string(val) +
                    "\" (expect uniform or lognormal)");
      }
      opt.traffic_seq_dist = *d;
      traffic_knob = "--traffic-seq-dist";
    } else if (key == "traffic-sigma") {
      const auto v = parse_double(val);
      if (!v || *v <= 0.0) return fail("bad --traffic-sigma");
      opt.traffic_sigma = *v;
      traffic_knob = "--traffic-sigma";
    } else if (key == "traffic-steps") {
      const auto v = parse_uint_list(val);
      if (!v || v->size() != 2 || (*v)[0] > (*v)[1] ||
          (*v)[1] > 0xFFFFFFFFull) {
        return fail("bad --traffic-steps: \"" + std::string(val) +
                    "\" (expect LO,HI with LO <= HI, e.g. 1,4)");
      }
      opt.traffic_steps_min = static_cast<std::uint32_t>((*v)[0]);
      opt.traffic_steps_max = static_cast<std::uint32_t>((*v)[1]);
      traffic_knob = "--traffic-steps";
    } else if (key == "traffic-groups") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v) return fail("bad --traffic-groups");
      opt.traffic_groups = *v;
      traffic_knob = "--traffic-groups";
    } else if (key == "traffic-zipf") {
      const auto v = parse_double(val);
      if (!v || *v < 0.0) return fail("bad --traffic-zipf");
      opt.traffic_zipf = *v;
      traffic_knob = "--traffic-zipf";
    } else if (key == "traffic-share-pct") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v > 100) {
        return fail("bad --traffic-share-pct: \"" + std::string(val) +
                    "\" (expect a percentage 0..100)");
      }
      opt.traffic_share_pct = *v;
      traffic_knob = "--traffic-share-pct";
    } else if (key == "trace-out") {
      opt.trace_out_path = std::string(val);
    } else if (key == "trace-in") {
      opt.trace_in_path = std::string(val);
    } else if (key == "interleave") {
      const auto f = fuse_order_from_string(val);
      if (!f) return fail("unknown interleave: " + std::string(val));
      opt.batch_interleave = *f;
    } else if (key == "req-dispatch") {
      const auto r = request_dispatch_from_string(val);
      if (!r) return fail("unknown req-dispatch: " + std::string(val));
      opt.cfg.core.request_dispatch = *r;
    } else if (key == "policy") {
      const auto combo = policy_combo_from_string(val);
      if (!combo) return fail("unknown policy combo: " + std::string(val));
      opt.cfg.throttle.policy = combo->throttle;
      opt.cfg.arb.policy = combo->arb;
      if (combo->arb == ArbPolicy::kCobrra) {
        opt.cfg.llc.resp_arb = RespArbPolicy::kRequestFirst;
      }
    } else if (key == "resp-arb") {
      const auto p = resp_arb_from_string(val);
      if (!p) return fail("unknown resp-arb: " + std::string(val));
      opt.cfg.llc.resp_arb = *p;
    } else if (key == "dispatch") {
      const auto d = dispatch_from_string(val);
      if (!d) return fail("unknown dispatch: " + std::string(val));
      opt.cfg.core.tb_dispatch = *d;
    } else if (key == "cores") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) return fail("bad --cores");
      opt.cfg.core.num_cores = *v;
    } else if (key == "llc-mb") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v || *v == 0) return fail("bad --llc-mb");
      llc_mb = *v;
    } else if (key == "slices") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) return fail("bad --slices");
      opt.cfg.llc.num_slices = *v;
    } else if (key == "mshr-entries") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) return fail("bad --mshr-entries");
      opt.cfg.llc.mshr_entries = *v;
    } else if (key == "mshr-targets") {
      const auto v = parse_uint<std::uint32_t>(val);
      if (!v || *v == 0) return fail("bad --mshr-targets");
      opt.cfg.llc.mshr_targets = *v;
    } else if (key == "repl") {
      const auto p = repl_policy_from_string(val);
      if (!p) return fail("unknown repl: " + std::string(val));
      opt.cfg.llc.repl = *p;
    } else if (key == "bypass") {
      const auto p = bypass_policy_from_string(val);
      if (!p) return fail("unknown bypass: " + std::string(val));
      opt.cfg.llc.bypass.policy = *p;
    } else if (key == "bypass-keep-p") {
      const auto v = parse_double(val);
      if (!v || *v < 0.0 || *v > 1.0) return fail("bad --bypass-keep-p");
      opt.cfg.llc.bypass.keep_probability = *v;
    } else if (key == "seed") {
      const auto v = parse_uint<std::uint64_t>(val);
      if (!v) return fail("bad --seed");
      opt.cfg.seed = *v;
    } else if (key == "csv") {
      opt.csv_path = std::string(val);
    } else if (key == "json") {
      opt.json_path = std::string(val);
    } else {
      return fail("unknown flag: --" + std::string(key));
    }
  }

  opt.cfg.llc.size_bytes = llc_mb << 20;

  // Open-loop traffic / trace replay cross-checks.
  if (opt.traffic && !opt.trace_in_path.empty()) {
    return fail("--traffic and --trace-in conflict (generate a workload or "
                "replay one, not both; record a generated one with "
                "--trace-out)");
  }
  if (!opt.traffic && traffic_knob != nullptr) {
    return fail(std::string(traffic_knob) +
                " requires --traffic=<process> (it shapes the generated "
                "workload)");
  }
  if (opt.traffic || !opt.trace_in_path.empty()) {
    const char* source = opt.traffic ? "--traffic" : "--trace-in";
    if (opt.op != "batch" || opt.batch_mode != ExecutionMode::kContinuous) {
      return fail(std::string(source) +
                  " requires --op=batch --mode=continuous (an open-loop "
                  "workload is a stream of timed arrivals)");
    }
    if (!opt.batch_seq_lens.empty() || !opt.batch_arrivals.empty() ||
        !opt.batch_steps.empty() || !opt.batch_prefix_groups.empty() ||
        !opt.batch_prefix_tokens.empty()) {
      return fail(std::string(source) +
                  " conflicts with --seqs/--arrivals/--steps/--prefix-* "
                  "(the workload source supplies every per-request field)");
    }
  }
  if (!opt.trace_out_path.empty() && opt.op != "batch") {
    return fail("--trace-out requires --op=batch (only batch runs have a "
                "request list to record)");
  }
  if (opt.digest_only && opt.op != "batch") {
    return fail("--digest requires --op=batch (the digest is defined over a "
                "batch run's stats)");
  }

  // Cross-field batch-scenario checks: catch arity mismatches and
  // mode-dependent flags here, with the flag names in the message, instead
  // of letting the scenario layer throw something less actionable.
  const std::size_t n_requests = opt.batch_seq_lens.empty()
                                     ? opt.batch_requests
                                     : opt.batch_seq_lens.size();
  if (!opt.batch_arrivals.empty() &&
      opt.batch_mode != ExecutionMode::kContinuous) {
    return fail("--arrivals requires --mode=continuous (the barrier modes "
                "have no notion of mid-pass admission)");
  }
  if (opt.batch_admit != AdmitPolicy::kNone &&
      opt.batch_mode != ExecutionMode::kContinuous) {
    return fail("--admit-policy requires --mode=continuous (the barrier "
                "modes have no serving queue)");
  }
  if (opt.batch_kv_budget != 0 && opt.batch_admit == AdmitPolicy::kNone) {
    return fail("--kv-budget requires --admit-policy=fcfs|srf "
                "(--admit-policy=none admits unconditionally, so a budget "
                "could never be enforced)");
  }
  if (opt.batch_preempt && opt.batch_admit == AdmitPolicy::kNone) {
    return fail("--preempt requires --admit-policy=fcfs|srf (a preempted "
                "request re-enters the serving queue, which policy none "
                "does not have)");
  }
  if (opt.batch_kv_evict != KvEvictPolicy::kNone) {
    if (!opt.batch_preempt) {
      return fail("--kv-evict=cold-blocks requires --preempt (blocks are "
                  "swapped out when a running request is preempted at a "
                  "stage boundary, which never happens without preemption)");
    }
    if (opt.batch_kv_budget == 0) {
      return fail("--kv-evict=cold-blocks requires a finite --kv-budget "
                  "(with an unlimited budget there is no pressure to "
                  "relieve, so eviction would only add refetch cost)");
    }
  } else {
    if (opt.batch_kv_block_bytes != 0 && !opt.batch_kv_share) {
      return fail("--kv-block-bytes requires --kv-evict=cold-blocks or "
                  "--kv-share=on (the block pool is the only consumer of "
                  "the block size)");
    }
    if (opt.batch_refetch_cost != 0) {
      return fail("--refetch-cost requires --kv-evict=cold-blocks (nothing "
                  "is ever refetched without paged eviction)");
    }
  }
  if (opt.batch_kv_share && opt.batch_mode != ExecutionMode::kContinuous) {
    return fail("--kv-share requires --mode=continuous (the barrier modes "
                "admit everything at once, so there is no serving-time "
                "block pool to share through)");
  }
  if (!opt.batch_prefix_groups.empty() || !opt.batch_prefix_tokens.empty()) {
    if (!opt.batch_kv_share) {
      return fail("--prefix-groups/--prefix-tokens require --kv-share=on "
                  "(prefix identity is ignored while sharing is off)");
    }
    if (opt.batch_prefix_groups.empty() || opt.batch_prefix_tokens.empty()) {
      return fail("--prefix-groups and --prefix-tokens require each other "
                  "(a group without a prefix length shares nothing)");
    }
    for (const std::uint64_t g : opt.batch_prefix_groups) {
      if (g >= 0xFFFFFFFFull) {
        return fail("bad --prefix-groups: group ids must fit 32 bits "
                    "(0xFFFFFFFF is the no-group sentinel)");
      }
    }
  }
  const std::pair<const char*, std::size_t> arities[] = {
      {"--arrivals", opt.batch_arrivals.size()},
      {"--steps", opt.batch_steps.size()},
      {"--prefix-groups", opt.batch_prefix_groups.size()},
      {"--prefix-tokens", opt.batch_prefix_tokens.size()},
  };
  for (const auto& [flag, size] : arities) {
    if (size > 1 && size != n_requests) {
      return fail(std::string(flag) + " has " + std::to_string(size) +
                  " entries but the batch has " + std::to_string(n_requests) +
                  " requests (pass one entry per request, or a single entry "
                  "to broadcast)");
    }
  }

  try {
    opt.cfg.validate();
  } catch (const std::invalid_argument& e) {
    return fail(std::string("invalid configuration: ") + e.what());
  }
  result.options = std::move(opt);
  return result;
}

}  // namespace llamcat
