// End-of-run statistics: merged per-component counters plus the derived
// metrics the paper reports (Fig 8): performance, MSHR entry utilization,
// L2 hit rate, MSHR hit rate, DRAM bandwidth.
#pragma once

#include <cstdint>
#include <ostream>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace llamcat {

struct SimStats {
  Cycle cycles = 0;
  double core_hz = 0.0;

  // derived headline metrics
  double l2_hit_rate = 0.0;     // hits / lookups
  double mshr_hit_rate = 0.0;   // merges / misses (paper §6.3.3 definition)
  double mshr_entry_util = 0.0; // time-averaged numEntry occupancy
  double dram_bw_gbps = 0.0;    // bytes moved / wall time
  double t_cs = 0.0;            // stall cycles / (cycles * slices)
  double ipc = 0.0;             // issued instructions per core-cycle (total)

  std::uint64_t instructions = 0;
  std::uint64_t thread_blocks = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;

  StatSet counters;  // every component counter, merged

  [[nodiscard]] double seconds() const {
    return core_hz > 0 ? static_cast<double>(cycles) / core_hz : 0.0;
  }
  /// Speedup of this run relative to a baseline run (cycles ratio).
  [[nodiscard]] double speedup_vs(const SimStats& baseline) const {
    return static_cast<double>(baseline.cycles) / static_cast<double>(cycles);
  }

  /// Folds another run's stats into this one, as if the two simulations ran
  /// back-to-back on the same machine: integer counters add, and the derived
  /// rates are recomputed over the combined run (hit rates from the merged
  /// LLC counters, occupancy/stall rates cycle-weighted, bandwidth over the
  /// combined wall time). Used by the scenario layer to aggregate operator
  /// runs into per-request and per-batch totals.
  void accumulate(const SimStats& other);

  void print(std::ostream& os) const;
};

}  // namespace llamcat
