// End-of-run statistics: merged per-component counters plus the derived
// metrics the paper reports (Fig 8): performance, MSHR entry utilization,
// L2 hit rate, MSHR hit rate, DRAM bandwidth.
//
// docs/metrics.md is the authoritative glossary for every stat surfaced
// here and by the scenario layer on top (per-request latency landmarks,
// the kNeverCycle sentinel semantics, the nearest-rank percentile
// definition, queue-wait/preemption/refetch counters) - bench JSON
// consumers should read that instead of reverse-engineering this file.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace llamcat {

/// Per-request share of one shared (co-scheduled) simulation run. Filled by
/// System::collect_stats when the run carries an IRequestTagger: events are
/// attributed to the request owning the accessed address, which - requests
/// occupying disjoint address slots - equals the issuing TB's request tag.
struct RequestSlice {
  std::uint32_t request_id = 0;
  /// Cycles between the request's first TB dispatch and last TB completion.
  Cycle cycles_in_flight = 0;
  /// Cycle of the request's first TB dispatch / last TB completion in this
  /// run (0 = never dispatched; real dispatches happen at cycle >= 1).
  /// Callers folding sequential runs into one stream timeline (the
  /// continuous-batching executor) offset these by the run's base cycle
  /// before accumulate(), which keeps the earliest first / latest last.
  Cycle first_dispatch_cycle = 0;
  Cycle last_complete_cycle = 0;
  std::uint64_t instructions = 0;
  std::uint64_t thread_blocks = 0;
  std::uint64_t llc_lookups = 0;
  std::uint64_t llc_hits = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t llc_mshr_hits = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;

  [[nodiscard]] double l2_hit_rate() const {
    return llc_lookups ? static_cast<double>(llc_hits) /
                             static_cast<double>(llc_lookups)
                       : 0.0;
  }

  /// Field-wise sum (cycles_in_flight adds: slices of sequential waves).
  void accumulate(const RequestSlice& other);
};

struct SimStats {
  Cycle cycles = 0;
  double core_hz = 0.0;

  // derived headline metrics
  double l2_hit_rate = 0.0;     // hits / lookups
  double mshr_hit_rate = 0.0;   // merges / misses (paper §6.3.3 definition)
  double mshr_entry_util = 0.0; // time-averaged numEntry occupancy
  double dram_bw_gbps = 0.0;    // bytes moved / wall time
  double t_cs = 0.0;            // stall cycles / (cycles * slices)
  double ipc = 0.0;             // issued instructions per core-cycle (total)

  std::uint64_t instructions = 0;
  std::uint64_t thread_blocks = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;

  StatSet counters;  // every component counter, merged

  /// Per-request attribution of this run (empty for untagged runs). Order
  /// follows first dispatch; `accumulate` merges entries by request_id.
  std::vector<RequestSlice> per_request;

  [[nodiscard]] double seconds() const {
    return core_hz > 0 ? static_cast<double>(cycles) / core_hz : 0.0;
  }
  /// Speedup of this run relative to a baseline run (cycles ratio).
  [[nodiscard]] double speedup_vs(const SimStats& baseline) const {
    return static_cast<double>(baseline.cycles) / static_cast<double>(cycles);
  }

  /// Folds another run's stats into this one, as if the two simulations ran
  /// back-to-back on the same machine: integer counters add, and the derived
  /// rates are recomputed over the combined run (hit rates from the merged
  /// LLC counters, occupancy/stall rates cycle-weighted, bandwidth over the
  /// combined wall time). Used by the scenario layer to aggregate operator
  /// runs into per-request and per-batch totals.
  void accumulate(const SimStats& other);

  /// `include_per_request` = false suppresses the per-request lines (used
  /// by callers that already printed their own per-request table).
  void print(std::ostream& os, bool include_per_request = true) const;
};

/// Nearest-rank percentile of `values` (p in [0,100], clamped): the
/// ceil(p/100 * n)-th smallest value, the standard definition for serving
/// latency landmarks (P50/P99). Returns 0 for an empty input. Takes the
/// vector by value because it sorts it.
[[nodiscard]] Cycle percentile_nearest_rank(std::vector<Cycle> values,
                                            double p);

}  // namespace llamcat
