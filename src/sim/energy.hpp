// Post-hoc energy model: converts end-of-run counters into an energy
// breakdown (DRAM / LLC / L1 / NoC) plus derived efficiency metrics.
//
// The paper evaluates speedup only; energy is the natural companion metric
// for an LLC study (throttling trades parallelism for locality, and
// locality is energy). Constants are per-operation energies at the level of
// a DDR5 power calculator and 15nm SRAM macros - they are calibration
// constants for *comparing policies on the same machine*, not measurements;
// absolute joules carry the usual factor-of-2 model uncertainty.
#pragma once

#include <ostream>

#include "common/config.hpp"
#include "sim/sim_stats.hpp"

namespace llamcat {

/// Per-operation energy constants (picojoules unless noted).
struct EnergyConfig {
  // -- DRAM (DDR5-3200 x16 class devices) ---------------------------------
  /// One ACT + PRE pair (charging one 2KB row).
  double dram_act_pre_pj = 1500.0;
  /// One 64-byte read burst, array + on-die datapath + I/O.
  double dram_rd_pj = 1050.0;
  /// One 64-byte write burst.
  double dram_wr_pj = 1100.0;
  /// One all-bank refresh command.
  double dram_ref_pj = 2800.0;
  /// Background (standby + clocking) power per channel, milliwatts.
  double dram_static_mw_per_channel = 75.0;

  // -- SRAM (15nm-class macros, 64B line granularity) ----------------------
  /// One L1 access (64KB macro, tag+data in parallel).
  double l1_access_pj = 6.0;
  /// One LLC tag probe (per lookup, hit or miss).
  double llc_tag_pj = 3.5;
  /// One LLC data-array access (2MB slice macro; hit read or fill write).
  double llc_data_pj = 30.0;
  /// One MSHR CAM probe or allocate.
  double mshr_pj = 0.9;

  // -- Interconnect ---------------------------------------------------------
  /// One request message (address + metadata flit).
  double noc_req_pj = 15.0;
  /// One 64-byte response message.
  double noc_resp_pj = 70.0;

  /// Throws std::invalid_argument if any per-operation energy is negative
  /// (zeroing a term to exclude it from the comparison is legitimate).
  void validate() const;
};

/// Energy breakdown of one run, in joules.
struct EnergyReport {
  double dram_dynamic_j = 0.0;
  double dram_static_j = 0.0;
  double llc_j = 0.0;
  double l1_j = 0.0;
  double noc_j = 0.0;

  double seconds = 0.0;

  [[nodiscard]] double total_j() const {
    return dram_dynamic_j + dram_static_j + llc_j + l1_j + noc_j;
  }
  [[nodiscard]] double avg_power_w() const {
    return seconds > 0.0 ? total_j() / seconds : 0.0;
  }
  /// Energy-delay product (J*s): the figure of merit that rewards policies
  /// which save time without spending proportionally more energy.
  [[nodiscard]] double edp_js() const { return total_j() * seconds; }
  /// DRAM dynamic energy per byte actually moved (pJ/B).
  [[nodiscard]] double dram_pj_per_byte(const SimStats& stats) const;

  void print(std::ostream& os) const;
};

/// Computes the breakdown from a finished run's merged counters.
EnergyReport estimate_energy(const EnergyConfig& energy, const SimConfig& cfg,
                             const SimStats& stats);

}  // namespace llamcat
