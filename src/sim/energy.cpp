#include "sim/energy.hpp"

#include <iomanip>
#include <stdexcept>

namespace llamcat {

namespace {
constexpr double kPicojoule = 1e-12;
constexpr double kMilliwatt = 1e-3;
}  // namespace

void EnergyConfig::validate() const {
  const double fields[] = {dram_act_pre_pj, dram_rd_pj,  dram_wr_pj,
                           dram_ref_pj,     dram_static_mw_per_channel,
                           l1_access_pj,    llc_tag_pj,  llc_data_pj,
                           mshr_pj,         noc_req_pj,  noc_resp_pj};
  for (const double f : fields) {
    if (f < 0.0) {
      throw std::invalid_argument(
          "EnergyConfig: per-operation energies must be >= 0");
    }
  }
}

double EnergyReport::dram_pj_per_byte(const SimStats& stats) const {
  const double bytes = static_cast<double>(
      (stats.dram_reads + stats.dram_writes) * kLineBytes);
  return bytes > 0.0 ? dram_dynamic_j / kPicojoule / bytes : 0.0;
}

EnergyReport estimate_energy(const EnergyConfig& energy, const SimConfig& cfg,
                             const SimStats& stats) {
  const StatSet& c = stats.counters;
  EnergyReport r;
  r.seconds = stats.seconds();

  const double acts = static_cast<double>(c.get("dram.activates"));
  const double reads = static_cast<double>(c.get("dram.reads"));
  const double writes = static_cast<double>(c.get("dram.writes"));
  const double refs = static_cast<double>(c.get("dram.refreshes"));
  r.dram_dynamic_j = (acts * energy.dram_act_pre_pj +
                      reads * energy.dram_rd_pj +
                      writes * energy.dram_wr_pj + refs * energy.dram_ref_pj) *
                     kPicojoule;
  r.dram_static_j = energy.dram_static_mw_per_channel * kMilliwatt *
                    cfg.dram.num_channels * r.seconds;

  // Every lookup probes the tag array; hits and fill installs touch the
  // data array; tag misses probe the MSHR CAM, allocations write it.
  const double lookups = static_cast<double>(c.get("llc.lookups"));
  const double data_accesses = static_cast<double>(
      c.get("llc.hits") + c.get("llc.responses_served") -
      c.get("llc.bypassed_fills"));
  const double mshr_ops = static_cast<double>(c.get("llc.misses") +
                                              c.get("llc.mshr_allocs"));
  r.llc_j = (lookups * energy.llc_tag_pj + data_accesses * energy.llc_data_pj +
             mshr_ops * energy.mshr_pj) *
            kPicojoule;

  const double l1_accesses = static_cast<double>(
      c.get("l1.load_hits") + c.get("l1.load_misses") +
      c.get("l1.load_merges") + c.get("l1.store_hits") +
      c.get("l1.store_misses") + c.get("l1.fills"));
  r.l1_j = l1_accesses * energy.l1_access_pj * kPicojoule;

  // NoC traffic: one request message per LLC ingress, one data response per
  // L1 fill (loads) - stores are posted and carry data in the request, so
  // charge them at response weight on the way in.
  const double reqs = static_cast<double>(c.get("llc.requests_in"));
  const double data_resps = static_cast<double>(c.get("l1.fills"));
  const double store_reqs = static_cast<double>(c.get("llc.store_hits"));
  r.noc_j = (reqs * energy.noc_req_pj +
             (data_resps + store_reqs) * energy.noc_resp_pj) *
            kPicojoule;
  return r;
}

void EnergyReport::print(std::ostream& os) const {
  const auto mj = [](double j) { return j * 1e3; };
  os << std::fixed << std::setprecision(3)
     << "energy (mJ): dram_dyn=" << mj(dram_dynamic_j)
     << " dram_static=" << mj(dram_static_j) << " llc=" << mj(llc_j)
     << " l1=" << mj(l1_j) << " noc=" << mj(noc_j)
     << " total=" << mj(total_j()) << "\n"
     << "avg power: " << avg_power_w() << " W, EDP: " << edp_js() * 1e6
     << " uJ*s\n";
}

}  // namespace llamcat
