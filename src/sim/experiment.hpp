// Experiment harness: named (config, workload) pairs run in parallel worker
// threads (each simulation itself stays single-threaded + deterministic).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/sim_stats.hpp"
#include "trace/mapper.hpp"
#include "trace/mapping.hpp"
#include "trace/operator.hpp"

namespace llamcat {

/// A workload = operator + mapping. `auto_map` uses the built-in Mapper
/// (the analytical half of the hybrid framework).
struct Workload {
  OperatorSpec op;
  Mapping mapping;

  static Workload logit(const ModelShape& model, std::uint64_t seq_len,
                        const SimConfig& cfg);
  static Workload attend(const ModelShape& model, std::uint64_t seq_len,
                         const SimConfig& cfg);
  /// Memory-bound decode GEMV (FFN / LM-head tile): streams a rows x cols
  /// weight matrix with no GQA sharing (the paper's §6.3.3 counterpoint).
  static Workload gemv(std::uint64_t rows, std::uint32_t cols,
                       const SimConfig& cfg);
  static Workload with_mapping(OperatorSpec op, Mapping m);
  /// Auto-maps an arbitrary pre-built spec (e.g. one whose tensor bases were
  /// relocated for a specific request/layer slot) the same way the named
  /// constructors above do.
  static Workload from_spec(OperatorSpec op, const SimConfig& cfg);
};

/// Runs one simulation to completion.
SimStats run_simulation(const SimConfig& cfg, const Workload& wl);

struct ExperimentSpec {
  std::string name;
  SimConfig cfg;
  Workload workload;
};

struct ExperimentResult {
  std::string name;
  SimStats stats;
  double wall_seconds = 0.0;
};

/// Runs all specs, `threads`-wide (0 = hardware concurrency). Results keep
/// the input order.
std::vector<ExperimentResult> run_experiments(
    std::span<const ExperimentSpec> specs, std::size_t threads = 0,
    bool verbose = false);

/// Convenience: applies arbitration/throttling policy selections to a copy
/// of `base` (used by every bench binary).
SimConfig with_policies(const SimConfig& base, ThrottlePolicy thr,
                        ArbPolicy arb,
                        std::optional<RespArbPolicy> resp_arb = std::nullopt);

/// Result of a multi-operator pipeline run (operators executed
/// back-to-back on the same machine, per-operator counters as the paper's
/// per-operator progress reset implies).
struct PipelineResult {
  std::vector<ExperimentResult> ops;

  [[nodiscard]] Cycle total_cycles() const;
  /// Sum of per-operator simulated seconds.
  [[nodiscard]] double total_seconds() const;
};

/// Runs `ops` sequentially (operator n+1 starts after operator n drains,
/// as a dependent decode pipeline must).
PipelineResult run_pipeline(const SimConfig& cfg,
                            std::span<const Workload> ops,
                            bool verbose = false);

/// The decode attention step for one token: Logit (Q.K^T) followed by
/// Attend (S.V). The softmax between them is elementwise on S and is not
/// memory-system-bound, so it is folded into Attend's compute cycles.
std::vector<Workload> decode_attention_step(const ModelShape& model,
                                            std::uint64_t seq_len,
                                            const SimConfig& cfg);

}  // namespace llamcat
