// Command-line option parsing for the llamcat_cli driver. Kept in the
// library (not the tool) so the string -> enum mappings are testable and
// reusable by scripts embedding the simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "trace/composite.hpp"
#include "trace/operator.hpp"

namespace llamcat {

// -- string -> enum mappings (also the CLI vocabulary) -----------------------
std::optional<ArbPolicy> arb_policy_from_string(std::string_view s);
std::optional<ThrottlePolicy> throttle_policy_from_string(std::string_view s);
std::optional<RespArbPolicy> resp_arb_from_string(std::string_view s);
std::optional<TbDispatch> dispatch_from_string(std::string_view s);
std::optional<RequestDispatch> request_dispatch_from_string(
    std::string_view s);
std::optional<FuseOrder> fuse_order_from_string(std::string_view s);
std::optional<ExecutionMode> execution_mode_from_string(std::string_view s);
std::optional<AdmitPolicy> admit_policy_from_string(std::string_view s);
std::optional<KvEvictPolicy> kv_evict_policy_from_string(std::string_view s);
std::optional<ReplPolicy> repl_policy_from_string(std::string_view s);
std::optional<BypassPolicy> bypass_policy_from_string(std::string_view s);
std::optional<ModelShape> model_from_string(std::string_view s);
std::optional<TrafficProcess> traffic_process_from_string(std::string_view s);
std::optional<TrafficDist> traffic_dist_from_string(std::string_view s);

/// "dynmg+BMA" / "dyncta" / "unopt+MA" -> (throttle, arbitration) pair.
struct PolicyCombo {
  ThrottlePolicy throttle = ThrottlePolicy::kNone;
  ArbPolicy arb = ArbPolicy::kFcfs;
};
std::optional<PolicyCombo> policy_combo_from_string(std::string_view s);

/// Everything the CLI can configure. `cfg` is fully assembled (Table 5
/// with overrides applied) after a successful parse.
struct CliOptions {
  SimConfig cfg;
  ModelShape model = ModelShape::llama3_70b();
  /// logit | attend | gemv | decode (pipeline) | batch (scenario subsystem)
  std::string op = "logit";
  std::uint64_t seq_len = 4096;
  std::uint64_t gemv_rows = 8192;
  std::uint32_t gemv_cols = 4096;

  // --op=batch: multi-request, multi-layer decode pass (scenario layer).
  std::uint32_t batch_requests = 2;
  std::uint32_t batch_layers = 2;
  /// Per-request sequence lengths; empty = every request at `seq_len`.
  std::vector<std::uint64_t> batch_seq_lens;
  /// Include the per-layer projection/FFN GEMV stage.
  bool batch_gemv = true;
  /// Independent per-operator Systems, one fused System per wave, or the
  /// long-lived streaming System (continuous batching).
  ExecutionMode batch_mode = ExecutionMode::kIndependent;
  /// kCoScheduled / kContinuous: TB interleaving across co-admitted ops.
  FuseOrder batch_interleave = FuseOrder::kRoundRobin;
  /// kContinuous: per-request arrival cycles. Size 1 broadcasts to every
  /// request; otherwise one entry per request. Empty = all arrive at 0.
  std::vector<std::uint64_t> batch_arrivals;
  /// Decode steps (tokens produced) per request; size 1 broadcasts.
  /// Empty = one step per request.
  std::vector<std::uint64_t> batch_steps;
  /// kContinuous serving-policy layer: admission discipline (none =
  /// unconditional, the raw streaming engine), aggregate peak-KV budget in
  /// bytes (0 = unlimited) and stage-boundary preemption.
  AdmitPolicy batch_admit = AdmitPolicy::kNone;
  std::uint64_t batch_kv_budget = 0;
  bool batch_preempt = false;
  /// Paged KV eviction on preemption (cold blocks swap to a modeled host
  /// tier, refetch charged at resume); requires --preempt and --kv-budget.
  KvEvictPolicy batch_kv_evict = KvEvictPolicy::kNone;
  /// Pager block size in bytes (0 = the line-granule default) and the
  /// refetch price in cycles per block (0 = the modeled host-link default).
  std::uint64_t batch_kv_block_bytes = 0;
  std::uint64_t batch_refetch_cost = 0;
  /// Cross-request KV prefix sharing (scenario/kv_block_pool.hpp): requests
  /// in the same --prefix-groups group pin their common prefix blocks once.
  bool batch_kv_share = false;
  /// Per-request prefix-group ids and shared-prefix token counts (size 1
  /// broadcasts; a 0 token entry keeps that request fully private). Both
  /// require --kv-share=on and each other.
  std::vector<std::uint64_t> batch_prefix_groups;
  std::vector<std::uint64_t> batch_prefix_tokens;
  /// Open-loop workload generation (scenario/traffic.hpp): --traffic=P
  /// replaces the hand-built request list with a generated one
  /// (--requests supplies the count). The remaining knobs mirror
  /// TrafficConfig; the option layer stores them raw so it does not depend
  /// on the scenario layer.
  bool traffic = false;
  TrafficProcess traffic_process = TrafficProcess::kPoisson;
  std::uint64_t traffic_seed = 1;
  std::uint64_t traffic_gap = 20'000;
  TrafficDist traffic_seq_dist = TrafficDist::kUniform;
  std::uint64_t traffic_seq_min = 64;
  std::uint64_t traffic_seq_max = 512;
  double traffic_sigma = 0.5;
  std::uint32_t traffic_steps_min = 1;
  std::uint32_t traffic_steps_max = 4;
  std::uint32_t traffic_groups = 0;
  double traffic_zipf = 1.0;
  std::uint32_t traffic_share_pct = 75;
  /// Trace record/replay (scenario/traffic.hpp): --trace-out records the
  /// request list the run used; --trace-in replays a recorded trace as the
  /// batch (replacing every workload flag).
  std::string trace_out_path;  // empty = no trace export
  std::string trace_in_path;   // empty = no replay
  /// --digest: print only the canonical batch_stats_digest (for scripted
  /// replay-equivalence checks: two runs match iff their digests do).
  bool digest_only = false;
  std::string csv_path;      // empty = no CSV export
  std::string json_path;     // empty = no JSON export
  bool print_counters = false;
  bool print_energy = false;
  bool verbose = false;
};

/// Outcome of a parse: options, a help request, or an error message.
struct ParseResult {
  std::optional<CliOptions> options;
  bool help_requested = false;
  std::string error;  // non-empty on failure

  [[nodiscard]] bool ok() const { return options.has_value(); }
};

/// Parses `args` (without argv[0]). Unknown flags, malformed values and
/// inconsistent configurations (via SimConfig::validate) all produce a
/// ParseResult with a diagnostic error.
ParseResult parse_cli_options(const std::vector<std::string_view>& args);

/// The --help text.
std::string cli_usage();

}  // namespace llamcat
