// Full-system wiring: cores + L1s -> NoC -> LLC slices -> DRAM, plus the
// throttling controller sampling loop. One System runs one operator (or,
// through the admission hook, a stream of dynamically admitted operators)
// to completion, single-threaded and deterministic.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "core/throttle.hpp"
#include "dram/dram_system.hpp"
#include "llc/llc_slice.hpp"
#include "noc/network.hpp"
#include "sim/sim_stats.hpp"
#include "trace/tracegen.hpp"
#include "vcore/tb_scheduler.hpp"
#include "vcore/vector_core.hpp"

namespace llamcat {

class System {
 public:
  /// `tagger` (optional, must outlive the System) enables per-request
  /// attribution of a fused multi-request source: LLC slices count their
  /// activity per owning request and collect_stats() emits one RequestSlice
  /// per request alongside the machine-wide totals.
  System(const SimConfig& cfg, const ITbSource& source,
         const IRequestTagger* tagger = nullptr);

  /// Admission callback for continuous batching: invoked once per cycle
  /// (first at cycle 0, before any work happens; afterwards at cycle c once
  /// every event of cycle c has settled). The hook may append work to the
  /// System's dynamic source and publish it with inject_work(). run()
  /// returns when the machine is drained and the hook's latest invocation
  /// admitted nothing - the caller decides whether that is the end of the
  /// stream or a segment boundary.
  using AdmissionHook = std::function<void(System&, Cycle)>;

  /// Runs to completion and returns the collected statistics. With an
  /// admission hook, "completion" means drained with nothing newly admitted
  /// (see AdmissionHook). Throws std::runtime_error if cfg.max_cycles is
  /// exceeded (deadlock guard).
  SimStats run(const AdmissionHook& admission = nullptr);

  /// Publishes thread blocks appended to the source since the last call:
  /// the scheduler deals them into its queues and every per-request
  /// tracking array (flight observation, core issue counters, LLC slice
  /// counters) grows to the new request population. Returns the number of
  /// thread blocks injected.
  std::uint64_t inject_work();

  /// Single-step API for tests.
  void step();
  [[nodiscard]] bool done() const;
  [[nodiscard]] Cycle now() const { return cycle_; }
  [[nodiscard]] SimStats collect_stats() const;

  // Introspection for tests.
  [[nodiscard]] const std::vector<std::unique_ptr<VectorCore>>& cores() const {
    return cores_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<LlcSlice>>& slices() const {
    return slices_;
  }
  [[nodiscard]] const DramSystem& dram() const { return dram_; }
  [[nodiscard]] const IThrottleController& throttle() const {
    return *throttle_;
  }
  [[nodiscard]] const TbScheduler& scheduler() const { return scheduler_; }

 private:
  void deliver_responses();
  void inject_core_traffic();
  void deliver_slice_requests();
  void sample_throttling();
  /// Per-request first-dispatch / last-completion observation (tagged runs).
  void track_request_flight();
  /// Sum of per-core progress counters across all slice arbiters.
  [[nodiscard]] std::vector<std::uint64_t> aggregate_progress() const;

  SimConfig cfg_;
  TbScheduler scheduler_;
  SliceMap slice_map_;
  std::vector<std::unique_ptr<VectorCore>> cores_;
  std::vector<std::unique_ptr<LlcSlice>> slices_;
  Network net_;
  DramSystem dram_;
  std::unique_ptr<IThrottleController> throttle_;

  Cycle cycle_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<MemResponse> resp_scratch_;
  Cycle prev_stall_total_ = 0;
  std::uint64_t total_c_mem_ = 0;
  std::uint64_t total_c_idle_ = 0;

  // Per-request flight tracking (indexed by the scheduler's dense request
  // index; empty when no tagger is attached).
  const IRequestTagger* tagger_ = nullptr;
  std::vector<bool> req_started_;
  std::vector<Cycle> req_first_dispatch_;
  std::vector<Cycle> req_last_complete_;
  std::vector<std::uint64_t> req_prev_completed_;
};

}  // namespace llamcat
