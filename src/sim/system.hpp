// Full-system wiring: cores + L1s -> NoC -> LLC slices -> DRAM, plus the
// throttling controller sampling loop. One System runs one operator (or,
// through the admission hook, a stream of dynamically admitted operators)
// to completion, single-threaded and deterministic.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "core/throttle.hpp"
#include "dram/dram_system.hpp"
#include "llc/llc_slice.hpp"
#include "noc/network.hpp"
#include "sim/sim_stats.hpp"
#include "trace/tracegen.hpp"
#include "vcore/tb_scheduler.hpp"
#include "vcore/vector_core.hpp"

namespace llamcat {

class System : private IFlightObserver {
 public:
  /// `tagger` (optional, must outlive the System) enables per-request
  /// attribution of a fused multi-request source: LLC slices count their
  /// activity per owning request and collect_stats() emits one RequestSlice
  /// per request alongside the machine-wide totals.
  System(const SimConfig& cfg, const ITbSource& source,
         const IRequestTagger* tagger = nullptr);

  /// Admission callback for continuous batching: invoked once per cycle
  /// (first at cycle 0, before any work happens; afterwards at cycle c once
  /// every event of cycle c has settled). The hook may append work to the
  /// System's dynamic source and publish it with inject_work(). run()
  /// returns when the machine is drained and the hook's latest invocation
  /// admitted nothing - the caller decides whether that is the end of the
  /// stream or a segment boundary.
  using AdmissionHook = std::function<void(System&, Cycle)>;

  /// Runs to completion and returns the collected statistics. With an
  /// admission hook, "completion" means drained with nothing newly admitted
  /// (see AdmissionHook). Throws std::runtime_error if cfg.max_cycles is
  /// exceeded (deadlock guard).
  SimStats run(const AdmissionHook& admission = nullptr);

  /// Publishes thread blocks appended to the source since the last call:
  /// the scheduler deals them into its queues and every per-request
  /// tracking array (flight observation, core issue counters, LLC slice
  /// counters) grows to the new request population. Returns the number of
  /// thread blocks injected.
  std::uint64_t inject_work();

  /// Single-step API for tests.
  void step();
  [[nodiscard]] bool done() const;
  [[nodiscard]] Cycle now() const { return cycle_; }
  [[nodiscard]] SimStats collect_stats() const;

  // ---- event-driven skip-ahead ---------------------------------------------
  /// The fast path (skip-ahead over provably frozen cycles plus per-core
  /// self-freezing) is on by default and produces byte-identical stats; it
  /// can be disabled for A/B debugging here or with the environment knob
  /// LLAMCAT_NO_FASTPATH=1.
  void set_fast_path(bool on) {
    fast_path_ = on;
    for (auto& core : cores_) core->set_fast_path(on);
    for (auto& slice : slices_) slice->set_fast_path(on);
  }
  [[nodiscard]] bool fast_path() const { return fast_path_; }

  /// Admission hooks call this on every invocation to publish the earliest
  /// future cycle at which they need to act again (their next arrival or
  /// refetch landmark; kNeverCycle when none is pending). A hook that never
  /// publishes a hint keeps the hint at 0, which disables skipping entirely
  /// while that hook drives the run - hooks stay correct by default and
  /// opt in to skip-ahead by hinting.
  void set_wake_hint(Cycle cycle) { wake_hint_ = cycle; }

  // Introspection for tests.
  [[nodiscard]] const std::vector<std::unique_ptr<VectorCore>>& cores() const {
    return cores_;
  }
  [[nodiscard]] const std::vector<std::unique_ptr<LlcSlice>>& slices() const {
    return slices_;
  }
  [[nodiscard]] const DramSystem& dram() const { return dram_; }
  [[nodiscard]] const IThrottleController& throttle() const {
    return *throttle_;
  }
  [[nodiscard]] const TbScheduler& scheduler() const { return scheduler_; }

 private:
  void deliver_responses();
  void inject_core_traffic();
  void deliver_slice_requests();
  void sample_throttling();
  /// Sum of per-core progress counters across all slice arbiters, written
  /// into `out` (reused scratch; resized to num_cores).
  void aggregate_progress(std::vector<std::uint64_t>& out) const;

  // Per-request first-dispatch / last-completion observation: event
  // callbacks from the scheduler (registered only on tagged runs), replacing
  // the old per-cycle O(num_requests) scan.
  void on_first_dispatch(std::uint32_t req_index) override;
  void on_request_complete(std::uint32_t req_index) override;

  /// Earliest cycle > now() at which any component can make observable
  /// progress. Returns now()+1 ("no skip") the moment any component is
  /// busy; when every component is frozen, fills core_prof_/slice_prof_
  /// with the per-component frozen deltas that fast_forward() consumes.
  [[nodiscard]] Cycle next_wake(bool has_hook);
  /// Advances cycle_ across `cycles` frozen cycles: bulk-accounts the
  /// profiled per-cycle deltas and ticks the DRAM clock domain normally
  /// (its completion events are provably after the wake cycle).
  void fast_forward(Cycle cycles);

  SimConfig cfg_;
  TbScheduler scheduler_;
  SliceMap slice_map_;
  std::vector<std::unique_ptr<VectorCore>> cores_;
  std::vector<std::unique_ptr<LlcSlice>> slices_;
  Network net_;
  DramSystem dram_;
  std::unique_ptr<IThrottleController> throttle_;

  Cycle cycle_ = 0;
  std::uint64_t seq_ = 0;
  std::vector<MemResponse> resp_scratch_;
  Cycle prev_stall_total_ = 0;
  std::uint64_t total_c_mem_ = 0;
  std::uint64_t total_c_idle_ = 0;

  // Skip-ahead state. wake_hint_ starts at 0 so a hook that never hints
  // forbids skipping; it is reset to 0 before every hook invocation.
  bool fast_path_ = true;
  Cycle wake_hint_ = 0;
  std::vector<VectorCore::WaitProfile> core_prof_;
  std::vector<LlcSlice::WaitProfile> slice_prof_;

  // Reusable sampling scratch (hoisted out of sample_throttling; same
  // pattern as resp_scratch_).
  std::vector<CoreSample> samples_scratch_;
  std::vector<std::optional<FirstTbReport>> first_tb_scratch_;
  GlobalSample global_scratch_;

  // Per-request flight tracking (indexed by the scheduler's dense request
  // index; empty when no tagger is attached).
  const IRequestTagger* tagger_ = nullptr;
  std::vector<bool> req_started_;
  std::vector<Cycle> req_first_dispatch_;
  std::vector<Cycle> req_last_complete_;
};

}  // namespace llamcat
