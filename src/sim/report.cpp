#include "sim/report.hpp"

#include <iomanip>
#include <set>

namespace llamcat {

namespace {

constexpr const char* kDerivedHeader =
    "name,cycles,seconds,l2_hit_rate,mshr_hit_rate,mshr_entry_util,"
    "dram_bw_gbps,t_cs,ipc,instructions,thread_blocks,dram_reads,dram_writes";

void write_derived_row(std::ostream& os, const ExperimentResult& r,
                       char sep) {
  const SimStats& s = r.stats;
  os << r.name << sep << s.cycles << sep << s.seconds() << sep
     << s.l2_hit_rate << sep << s.mshr_hit_rate << sep << s.mshr_entry_util
     << sep << s.dram_bw_gbps << sep << s.t_cs << sep << s.ipc << sep
     << s.instructions << sep << s.thread_blocks << sep << s.dram_reads << sep
     << s.dram_writes;
}

/// Minimal JSON string escaping (names are ASCII identifiers, but a
/// workload name could contain quotes or backslashes).
std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (char ch : in) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  return out;
}

void write_json_object(std::ostream& os, const std::string& name,
                       const SimStats& s, double wall_seconds) {
  os << "  {\n";
  os << "    \"name\": \"" << json_escape(name) << "\",\n";
  os << "    \"cycles\": " << s.cycles << ",\n";
  os << "    \"seconds\": " << s.seconds() << ",\n";
  if (wall_seconds >= 0.0) {
    os << "    \"wall_seconds\": " << wall_seconds << ",\n";
  }
  os << "    \"l2_hit_rate\": " << s.l2_hit_rate << ",\n";
  os << "    \"mshr_hit_rate\": " << s.mshr_hit_rate << ",\n";
  os << "    \"mshr_entry_util\": " << s.mshr_entry_util << ",\n";
  os << "    \"dram_bw_gbps\": " << s.dram_bw_gbps << ",\n";
  os << "    \"t_cs\": " << s.t_cs << ",\n";
  os << "    \"ipc\": " << s.ipc << ",\n";
  os << "    \"instructions\": " << s.instructions << ",\n";
  os << "    \"thread_blocks\": " << s.thread_blocks << ",\n";
  os << "    \"dram_reads\": " << s.dram_reads << ",\n";
  os << "    \"dram_writes\": " << s.dram_writes << ",\n";
  os << "    \"counters\": {";
  bool first = true;
  for (const auto& [k, v] : s.counters.counters()) {
    os << (first ? "\n" : ",\n") << "      \"" << json_escape(k)
       << "\": " << v;
    first = false;
  }
  os << "\n    }\n  }";
}

}  // namespace

void write_csv(std::ostream& os, std::span<const ExperimentResult> results,
               const ReportOptions& opts) {
  const auto flags = os.flags();
  os << std::setprecision(10);

  std::string header = kDerivedHeader;
  if (opts.separator != ',') {
    for (char& ch : header) {
      if (ch == ',') ch = opts.separator;
    }
  }
  os << header;

  std::set<std::string> counter_keys;
  if (opts.include_counters) {
    for (const auto& r : results) {
      for (const auto& [k, v] : r.stats.counters.counters()) {
        (void)v;
        counter_keys.insert(k);
      }
    }
    for (const auto& k : counter_keys) os << opts.separator << k;
  }
  os << "\n";

  for (const auto& r : results) {
    write_derived_row(os, r, opts.separator);
    if (opts.include_counters) {
      for (const auto& k : counter_keys) {
        os << opts.separator << r.stats.counters.get(k);
      }
    }
    os << "\n";
  }
  os.flags(flags);
}

void write_json(std::ostream& os, std::span<const ExperimentResult> results) {
  const auto flags = os.flags();
  os << std::setprecision(10);
  os << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    write_json_object(os, results[i].name, results[i].stats,
                      results[i].wall_seconds);
    os << (i + 1 < results.size() ? ",\n" : "\n");
  }
  os << "]\n";
  os.flags(flags);
}

void write_json(std::ostream& os, const std::string& name,
                const SimStats& stats) {
  const auto flags = os.flags();
  os << std::setprecision(10);
  os << "[\n";
  write_json_object(os, name, stats, -1.0);
  os << "\n]\n";
  os.flags(flags);
}

}  // namespace llamcat
