// Plain-text memory-trace files: the hand-off format of the hybrid
// framework (analytical model -> trace -> cycle-level simulator, Fig 6).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "trace/tracegen.hpp"

namespace llamcat {

/// Writes `source` (all thread blocks) as a text trace:
///   # llamcat-trace v2
///   tb <id> <h> <g> <l_begin> <l_end> <request_id> <source_op>
///   L <hex line addr> | S <hex line addr> | C <cycles>
///   end
/// v2 appends the request/operator provenance of fused multi-request
/// sources; the reader also accepts v1 (five-field tb headers, provenance
/// defaulting to 0).
void write_trace(std::ostream& os, const ITbSource& source);
void write_trace_file(const std::string& path, const ITbSource& source);

/// Parses a text trace back into a ReplayTrace. Throws std::runtime_error
/// on malformed input.
std::unique_ptr<ReplayTrace> read_trace(std::istream& is);
std::unique_ptr<ReplayTrace> read_trace_file(const std::string& path);

}  // namespace llamcat
