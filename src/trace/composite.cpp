#include "trace/composite.hpp"

#include <stdexcept>
#include <utility>

namespace llamcat {

OperatorSpec shift_to_slot(OperatorSpec spec, std::uint64_t slot) {
  const Addr delta = static_cast<Addr>(slot) * kSlotStride;
  spec.q_base += delta;
  spec.kv_base += delta;
  spec.s_base += delta;
  spec.out_base += delta;
  return spec;
}

std::string to_string(FuseOrder o) {
  switch (o) {
    case FuseOrder::kRoundRobin: return "round-robin";
    case FuseOrder::kConcat: return "concat";
  }
  return "?";
}

void claim_operator_slots(
    std::unordered_map<std::uint64_t, std::uint32_t>& owner,
    std::uint32_t dense, std::uint32_t request_id,
    const std::vector<std::uint32_t>& request_ids, const OperatorSpec& spec) {
  const auto claim = [&](Addr base, std::uint64_t bytes) {
    const std::uint64_t first = base / kSlotStride;
    const std::uint64_t last = (base + (bytes ? bytes - 1 : 0)) / kSlotStride;
    for (std::uint64_t s = first; s <= last; ++s) {
      const auto [slot_it, fresh] = owner.try_emplace(s, dense);
      if (!fresh && slot_it->second != dense) {
        throw std::invalid_argument(
            "fused trace source: address slot " + std::to_string(s) +
            " aliased by requests " +
            std::to_string(request_ids[slot_it->second]) + " and " +
            std::to_string(request_id));
      }
    }
  };
  claim(spec.q_base, spec.q_bytes());
  claim(spec.kv_base, spec.kv_bytes());
  claim(spec.s_base, spec.s_bytes());
  claim(spec.out_base, spec.q_bytes());  // O has Q's shape
}

void CompositeTbSource::add(std::uint32_t request_id, OperatorSpec spec,
                            Mapping mapping) {
  // Dense request index (order of first appearance).
  const auto [it, inserted] = request_index_.try_emplace(
      request_id, static_cast<std::uint32_t>(request_ids_.size()));
  if (inserted) request_ids_.push_back(request_id);
  const std::uint32_t dense = it->second;

  claim_operator_slots(slot_owner_, dense, request_id, request_ids_, spec);

  gens_.push_back(std::make_unique<TraceGen>(std::move(spec), mapping));
  op_request_id_.push_back(request_id);
  built_ = false;
}

void CompositeTbSource::ensure_built() const {
  if (built_) return;
  built_ = true;
  refs_.clear();
  tbs_.clear();
  std::uint64_t total = 0;
  for (const auto& g : gens_) total += g->num_tbs();
  refs_.reserve(total);
  tbs_.reserve(total);

  if (order_ == FuseOrder::kConcat) {
    for (std::uint32_t op = 0; op < gens_.size(); ++op) {
      for (std::uint64_t t = 0; t < gens_[op]->num_tbs(); ++t) {
        refs_.push_back(Ref{op, t});
      }
    }
  } else {  // kRoundRobin: one TB per operator in turn, operators in add order
    std::vector<std::uint64_t> next(gens_.size(), 0);
    std::uint64_t placed = 0;
    while (placed < total) {
      for (std::uint32_t op = 0; op < gens_.size(); ++op) {
        if (next[op] < gens_[op]->num_tbs()) {
          refs_.push_back(Ref{op, next[op]++});
          ++placed;
        }
      }
    }
  }

  for (std::uint64_t idx = 0; idx < refs_.size(); ++idx) {
    const Ref& r = refs_[idx];
    TbDesc d = gens_[r.op]->tb(r.local);
    d.id = static_cast<TbId>(idx);
    d.request_id = op_request_id_[r.op];
    d.source_op = r.op;
    tbs_.push_back(d);
  }
}

std::uint32_t CompositeTbSource::instr_count(std::uint64_t tb_idx) const {
  ensure_built();
  const Ref& r = refs_[tb_idx];
  return gens_[r.op]->instr_count(r.local);
}

Instr CompositeTbSource::instr_at(std::uint64_t tb_idx,
                                  std::uint32_t i) const {
  ensure_built();
  const Ref& r = refs_[tb_idx];
  return gens_[r.op]->instr_at(r.local, i);
}

std::uint32_t CompositeTbSource::request_index_of(Addr line_addr) const {
  const auto it = slot_owner_.find(line_addr / kSlotStride);
  return it == slot_owner_.end() ? kNoRequest : it->second;
}

}  // namespace llamcat
