// Lowers a (spec, mapping) pair into per-thread-block instruction streams.
// Streams are addressed (tb, index) and computed in O(1), so the full trace
// never needs to be materialized (the paper's traces for 32K sequences are
// tens of millions of lines).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "trace/mapping.hpp"
#include "trace/operator.hpp"

namespace llamcat {

/// One vector-core instruction at line granularity. A 128-lane vector load
/// of fp16 is emitted as head_dim*dtype/64 consecutive kLoad instructions
/// (the hardware coalescer's output, paper §5).
struct Instr {
  enum class Kind : std::uint8_t { kCompute, kLoad, kStore };
  Kind kind = Kind::kCompute;
  Addr line_addr = 0;     // valid for kLoad/kStore
  std::uint32_t cycles = 1;  // valid for kCompute
};

/// Source of thread blocks + their instruction streams. Implemented by
/// TraceGen (analytical) and ReplayTrace (from a trace file).
class ITbSource {
 public:
  virtual ~ITbSource() = default;
  [[nodiscard]] virtual std::uint64_t num_tbs() const = 0;
  [[nodiscard]] virtual const TbDesc& tb(std::uint64_t idx) const = 0;
  [[nodiscard]] virtual std::uint32_t instr_count(std::uint64_t tb_idx)
      const = 0;
  [[nodiscard]] virtual Instr instr_at(std::uint64_t tb_idx,
                                       std::uint32_t i) const = 0;
};

/// Analytical trace generator.
///
/// Logit TB (h, g, [l0,l1)): stream layout
///   [0, qL)                     : Q[h,g,:] vector load (qL lines)
///   then per l: kvL K-line loads + 1 compute
///   tail                        : tb_out_lines stores of S[h,g,l0..l1)
/// Attend TB: per l, an S line load every (64/dtype) elements, kvL V-line
/// loads, 1 compute; tail stores the partial O[h,g,:] vector.
class TraceGen final : public ITbSource {
 public:
  TraceGen(OperatorSpec spec, Mapping mapping);

  [[nodiscard]] std::uint64_t num_tbs() const override {
    return tbs_.size();
  }
  [[nodiscard]] const TbDesc& tb(std::uint64_t idx) const override {
    return tbs_[idx];
  }
  [[nodiscard]] std::uint32_t instr_count(std::uint64_t tb_idx) const override;
  [[nodiscard]] Instr instr_at(std::uint64_t tb_idx,
                               std::uint32_t i) const override;

  [[nodiscard]] const OperatorSpec& spec() const { return spec_; }
  [[nodiscard]] const Mapping& mapping() const { return mapping_; }
  [[nodiscard]] TrafficEstimate traffic() const {
    return estimate_traffic(spec_, mapping_);
  }

 private:
  [[nodiscard]] Instr logit_instr(const TbDesc& tb, std::uint32_t i) const;
  [[nodiscard]] Instr attend_instr(const TbDesc& tb, std::uint32_t i) const;

  OperatorSpec spec_;
  Mapping mapping_;
  std::vector<TbDesc> tbs_;
  std::uint32_t kv_lines_per_l_;  // head_dim * dtype / 64
  std::uint32_t q_lines_;         // lines of one Q/O vector
  std::uint32_t out_elems_per_line_;
};

/// A fully materialized trace (typically read back from a file through
/// trace_io) exposed through the same interface.
class ReplayTrace final : public ITbSource {
 public:
  ReplayTrace(std::vector<TbDesc> tbs, std::vector<std::vector<Instr>> streams)
      : tbs_(std::move(tbs)), streams_(std::move(streams)) {}

  [[nodiscard]] std::uint64_t num_tbs() const override { return tbs_.size(); }
  [[nodiscard]] const TbDesc& tb(std::uint64_t idx) const override {
    return tbs_[idx];
  }
  [[nodiscard]] std::uint32_t instr_count(std::uint64_t tb_idx) const override {
    return static_cast<std::uint32_t>(streams_[tb_idx].size());
  }
  [[nodiscard]] Instr instr_at(std::uint64_t tb_idx,
                               std::uint32_t i) const override {
    return streams_[tb_idx][i];
  }

 private:
  std::vector<TbDesc> tbs_;
  std::vector<std::vector<Instr>> streams_;
};

}  // namespace llamcat
