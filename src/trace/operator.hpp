// Decode-stage attention operators (paper §6.2.2). The Logit operator
// (Q·Kᵀ) is the paper's benchmark; Attend (S·V) is provided as the natural
// companion for the full attention pipeline.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace llamcat {

/// GQA model shape: H KV heads, each shared by G query heads of dim D.
struct ModelShape {
  std::string name;
  std::uint32_t num_kv_heads = 8;   // H
  std::uint32_t group_size = 8;     // G (query heads per KV head)
  std::uint32_t head_dim = 128;     // D
  std::uint32_t dtype_bytes = 2;    // fp16

  /// Llama3 70b decode shape used in the paper: H=8, G=8, D=128.
  static ModelShape llama3_70b();
  /// Llama3 405b decode shape used in the paper: H=8, G=16, D=128.
  static ModelShape llama3_405b();
  /// Llama3 8b: 32 query heads over 8 KV heads (H=8, G=4, D=128).
  static ModelShape llama3_8b();
  /// Gemma2 27b: 32 query heads over 16 KV heads (H=16, G=2, D=128).
  static ModelShape gemma2_27b();
  /// Qwen2 72b: 64 query heads over 8 KV heads (H=8, G=8, D=128).
  static ModelShape qwen2_72b();
  /// Degenerate no-GQA shape (H=1, G=1, D=cols): turns the Logit operator
  /// into a plain GEMV y[L] = W[L,D]·x[D] with no cross-request sharing -
  /// the paper's §6.3.3 counterpoint ("non-GQA operators do not share
  /// activation across heads"). `cols` must keep rows line-aligned
  /// (cols * dtype % 64 == 0).
  static ModelShape gemv(std::uint32_t cols);
};

enum class OpKind : std::uint8_t {
  kLogit,   // S[h,g,l] = sum_d Q[h,g,d] * K[h,l,d]
  kAttend,  // O[h,g,d] = sum_l S[h,g,l] * V[h,l,d]
};

std::string to_string(OpKind k);

/// A fully-specified operator instance: shape + sequence length + the
/// simulated address layout of its tensors.
///
/// Layouts (row-major, innermost last):
///   Q / O : [H*G][D]        at q_base / out_base
///   K / V : [H][L][D]       at kv_base
///   S     : [H][G][L]       at s_base
struct OperatorSpec {
  OpKind kind = OpKind::kLogit;
  ModelShape model;
  std::uint64_t seq_len = 4096;  // L

  Addr q_base = 0x4000'0000;    // 1 GB
  Addr kv_base = 0x8000'0000;   // 2 GB
  Addr s_base = 0x2'0000'0000;  // 8 GB
  Addr out_base = 0x3'0000'0000;

  static OperatorSpec logit(const ModelShape& m, std::uint64_t seq_len);
  static OperatorSpec attend(const ModelShape& m, std::uint64_t seq_len);
  /// GEMV y[rows] = W[rows, cols] · x[cols]: a Logit instance on the
  /// degenerate H=1/G=1 shape (x maps to Q, W maps to K, y maps to S).
  /// Models memory-bound decode GEMVs (FFN / LM-head tiles) that stream
  /// weights with no GQA sharing.
  static OperatorSpec gemv(std::uint64_t rows, std::uint32_t cols);

  // -- byte sizes -----------------------------------------------------------
  [[nodiscard]] std::uint64_t q_bytes() const {
    return static_cast<std::uint64_t>(model.num_kv_heads) * model.group_size *
           model.head_dim * model.dtype_bytes;
  }
  [[nodiscard]] std::uint64_t kv_bytes() const {
    return static_cast<std::uint64_t>(model.num_kv_heads) * seq_len *
           model.head_dim * model.dtype_bytes;
  }
  [[nodiscard]] std::uint64_t s_bytes() const {
    return static_cast<std::uint64_t>(model.num_kv_heads) * model.group_size *
           seq_len * model.dtype_bytes;
  }

  // -- element addressing ---------------------------------------------------
  [[nodiscard]] Addr q_elem(std::uint32_t h, std::uint32_t g,
                            std::uint32_t d) const {
    return q_base + ((static_cast<Addr>(h) * model.group_size + g) *
                         model.head_dim +
                     d) *
                        model.dtype_bytes;
  }
  [[nodiscard]] Addr kv_elem(std::uint32_t h, std::uint64_t l,
                             std::uint32_t d) const {
    return kv_base + ((static_cast<Addr>(h) * seq_len + l) * model.head_dim +
                      d) *
                         model.dtype_bytes;
  }
  [[nodiscard]] Addr s_elem(std::uint32_t h, std::uint32_t g,
                            std::uint64_t l) const {
    return s_base + ((static_cast<Addr>(h) * model.group_size + g) * seq_len +
                     l) *
                        model.dtype_bytes;
  }
  [[nodiscard]] Addr out_elem(std::uint32_t h, std::uint32_t g,
                              std::uint32_t d) const {
    return out_base + ((static_cast<Addr>(h) * model.group_size + g) *
                           model.head_dim +
                       d) *
                          model.dtype_bytes;
  }

  /// MACs performed by the whole operator (for intensity reports).
  [[nodiscard]] std::uint64_t total_macs() const {
    return static_cast<std::uint64_t>(model.num_kv_heads) * model.group_size *
           seq_len * model.head_dim;
  }

  void validate() const;
};

}  // namespace llamcat
