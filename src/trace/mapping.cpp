#include "trace/mapping.hpp"

#include <stdexcept>

#include "common/math_util.hpp"

namespace llamcat {

std::string to_string(TbOrder o) {
  switch (o) {
    case TbOrder::kHLG: return "HLG";
    case TbOrder::kHGL: return "HGL";
    case TbOrder::kLHG: return "LHG";
  }
  return "?";
}

std::uint32_t Mapping::tb_out_lines(const OperatorSpec& spec) const {
  // Logit: output S[h,g,l0..l1) is l_tile contiguous elements.
  // Attend: output O[h,g,:] is head_dim elements regardless of l_tile; the
  // "output lines" constraint applies to the Logit operator's AttScore.
  const std::uint32_t elems = out_elems_per_line(spec);
  return static_cast<std::uint32_t>(ceil_div(l_tile, elems));
}

void Mapping::validate(const OperatorSpec& spec) const {
  auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("Mapping: ") + msg);
  };
  if (l_tile == 0) fail("l_tile == 0");
  if (vector_lanes == 0) fail("vector_lanes == 0");
  // Constraint (1): fastest axis = D, and one vector instruction must cover
  // whole cache lines.
  const std::uint64_t vec_bytes =
      static_cast<std::uint64_t>(vector_lanes) * spec.model.dtype_bytes;
  if (vec_bytes % kLineBytes != 0)
    fail("vector width must cover whole cache lines (constraint 1)");
  if (static_cast<std::uint64_t>(spec.model.head_dim) *
          spec.model.dtype_bytes % vec_bytes !=
      0)
    fail("head_dim must be a multiple of the vector width");
  // Constraint (2): >= 64B of L innermost, i.e. l_tile covers at least one
  // full output line, and tiles are line-aligned so AttScore lines are not
  // shared between thread blocks (false sharing).
  const std::uint32_t elems = out_elems_per_line(spec);
  if (l_tile % elems != 0)
    fail("l_tile must be a multiple of one output line (constraint 2)");
  if (spec.seq_len % l_tile != 0)
    fail("seq_len must be a multiple of l_tile");
}

std::uint64_t Mapping::num_thread_blocks(const OperatorSpec& spec) const {
  return static_cast<std::uint64_t>(spec.model.num_kv_heads) *
         spec.model.group_size * (spec.seq_len / l_tile);
}

std::vector<TbDesc> Mapping::thread_blocks(const OperatorSpec& spec) const {
  validate(spec);
  const std::uint32_t H = spec.model.num_kv_heads;
  const std::uint32_t G = spec.model.group_size;
  const std::uint64_t T = spec.seq_len / l_tile;  // tiles along L
  std::vector<TbDesc> tbs;
  tbs.reserve(static_cast<std::size_t>(H) * G * T);
  auto emit = [&](std::uint32_t h, std::uint32_t g, std::uint64_t t) {
    TbDesc d;
    d.id = static_cast<TbId>(tbs.size());
    d.h = h;
    d.g = g;
    d.l_begin = t * l_tile;
    d.l_end = d.l_begin + l_tile;
    tbs.push_back(d);
  };
  switch (order) {
    case TbOrder::kHLG:
      for (std::uint32_t h = 0; h < H; ++h)
        for (std::uint64_t t = 0; t < T; ++t)
          for (std::uint32_t g = 0; g < G; ++g) emit(h, g, t);
      break;
    case TbOrder::kHGL:
      for (std::uint32_t h = 0; h < H; ++h)
        for (std::uint32_t g = 0; g < G; ++g)
          for (std::uint64_t t = 0; t < T; ++t) emit(h, g, t);
      break;
    case TbOrder::kLHG:
      for (std::uint64_t t = 0; t < T; ++t)
        for (std::uint32_t h = 0; h < H; ++h)
          for (std::uint32_t g = 0; g < G; ++g) emit(h, g, t);
      break;
  }
  return tbs;
}

TrafficEstimate estimate_traffic(const OperatorSpec& spec, const Mapping& m) {
  m.validate(spec);
  const auto& md = spec.model;
  const std::uint64_t H = md.num_kv_heads;
  const std::uint64_t G = md.group_size;
  const std::uint64_t L = spec.seq_len;
  const std::uint64_t kv_lines_per_l =
      static_cast<std::uint64_t>(md.head_dim) * md.dtype_bytes / kLineBytes;
  const std::uint64_t q_lines_per_tb = kv_lines_per_l;  // one D-vector
  const std::uint64_t tiles = L / m.l_tile;
  const std::uint64_t num_tbs = H * G * tiles;

  TrafficEstimate e;
  if (spec.kind == OpKind::kLogit) {
    // Per TB: Q vector + l_tile K vectors; store l_tile elements of S.
    e.load_line_requests =
        num_tbs * (q_lines_per_tb + m.l_tile * kv_lines_per_l);
    e.store_line_requests = num_tbs * m.tb_out_lines(spec);
    e.unique_load_lines = H * G * q_lines_per_tb      // Q
                          + H * L * kv_lines_per_l;   // K (shared across g)
    e.unique_store_lines = e.store_line_requests;     // S written once
    e.compute_cycles = num_tbs * m.l_tile * m.compute_cycles_per_l;
  } else {  // kAttend: per l, V vector + one S element (line per 32 l)
    const std::uint64_t s_lines_per_tb =
        ceil_div(m.l_tile * md.dtype_bytes, kLineBytes);
    e.load_line_requests =
        num_tbs * (m.l_tile * kv_lines_per_l + s_lines_per_tb);
    e.store_line_requests = num_tbs * q_lines_per_tb;  // partial O per tile
    e.unique_load_lines = H * L * kv_lines_per_l       // V
                          + H * G * ceil_div(L * md.dtype_bytes, kLineBytes);
    e.unique_store_lines = H * G * q_lines_per_tb;
    e.compute_cycles = num_tbs * m.l_tile * m.compute_cycles_per_l;
  }
  e.total_instructions =
      e.load_line_requests + e.store_line_requests +
      num_tbs * m.l_tile;  // one compute instruction per L element
  return e;
}

}  // namespace llamcat
