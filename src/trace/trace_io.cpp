#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace llamcat {

namespace {
constexpr const char* kMagicV2 = "# llamcat-trace v2";
constexpr const char* kMagicV1 = "# llamcat-trace v1";
}

void write_trace(std::ostream& os, const ITbSource& source) {
  os << kMagicV2 << "\n";
  for (std::uint64_t t = 0; t < source.num_tbs(); ++t) {
    const TbDesc& d = source.tb(t);
    os << "tb " << d.id << " " << d.h << " " << d.g << " " << d.l_begin << " "
       << d.l_end << " " << d.request_id << " " << d.source_op << "\n";
    const std::uint32_t n = source.instr_count(t);
    for (std::uint32_t i = 0; i < n; ++i) {
      const Instr ins = source.instr_at(t, i);
      switch (ins.kind) {
        case Instr::Kind::kLoad:
          os << "L " << std::hex << ins.line_addr << std::dec << "\n";
          break;
        case Instr::Kind::kStore:
          os << "S " << std::hex << ins.line_addr << std::dec << "\n";
          break;
        case Instr::Kind::kCompute:
          os << "C " << ins.cycles << "\n";
          break;
      }
    }
    os << "end\n";
  }
}

void write_trace_file(const std::string& path, const ITbSource& source) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open trace file for write: " + path);
  write_trace(os, source);
}

std::unique_ptr<ReplayTrace> read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || (line != kMagicV2 && line != kMagicV1)) {
    throw std::runtime_error("trace: bad magic line");
  }
  const bool v2 = line == kMagicV2;
  std::vector<TbDesc> tbs;
  std::vector<std::vector<Instr>> streams;
  std::vector<Instr>* cur = nullptr;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "tb") {
      TbDesc d;
      ls >> d.id >> d.h >> d.g >> d.l_begin >> d.l_end;
      // v2 headers carry provenance; v1 headers stop after l_end (fields
      // stay 0). A truncated v2 row is malformed, not a v1 fallback.
      if (v2) ls >> d.request_id >> d.source_op;
      if (!ls) throw std::runtime_error("trace: malformed tb header");
      tbs.push_back(d);
      streams.emplace_back();
      cur = &streams.back();
    } else if (tok == "end") {
      cur = nullptr;
    } else if (tok == "L" || tok == "S") {
      if (cur == nullptr) throw std::runtime_error("trace: instr outside tb");
      Addr a = 0;
      ls >> std::hex >> a >> std::dec;
      if (!ls) throw std::runtime_error("trace: malformed address");
      cur->push_back(Instr{tok == "L" ? Instr::Kind::kLoad
                                      : Instr::Kind::kStore,
                           a, 1});
    } else if (tok == "C") {
      if (cur == nullptr) throw std::runtime_error("trace: instr outside tb");
      std::uint32_t c = 0;
      ls >> c;
      if (!ls) throw std::runtime_error("trace: malformed compute");
      cur->push_back(Instr{Instr::Kind::kCompute, 0, c});
    } else {
      throw std::runtime_error("trace: unknown token '" + tok + "'");
    }
  }
  if (cur != nullptr) throw std::runtime_error("trace: unterminated tb");
  return std::make_unique<ReplayTrace>(std::move(tbs), std::move(streams));
}

std::unique_ptr<ReplayTrace> read_trace_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open trace file for read: " + path);
  return read_trace(is);
}

}  // namespace llamcat
