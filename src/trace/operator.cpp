#include "trace/operator.hpp"

#include <stdexcept>

#include "common/math_util.hpp"

namespace llamcat {

ModelShape ModelShape::llama3_70b() {
  return ModelShape{"llama3-70b", 8, 8, 128, 2};
}

ModelShape ModelShape::llama3_405b() {
  return ModelShape{"llama3-405b", 8, 16, 128, 2};
}

ModelShape ModelShape::llama3_8b() {
  return ModelShape{"llama3-8b", 8, 4, 128, 2};
}

ModelShape ModelShape::gemma2_27b() {
  return ModelShape{"gemma2-27b", 16, 2, 128, 2};
}

ModelShape ModelShape::qwen2_72b() {
  return ModelShape{"qwen2-72b", 8, 8, 128, 2};
}

ModelShape ModelShape::gemv(std::uint32_t cols) {
  return ModelShape{"gemv", 1, 1, cols, 2};
}

std::string to_string(OpKind k) {
  switch (k) {
    case OpKind::kLogit: return "logit";
    case OpKind::kAttend: return "attend";
  }
  return "?";
}

OperatorSpec OperatorSpec::logit(const ModelShape& m, std::uint64_t seq_len) {
  OperatorSpec spec;
  spec.kind = OpKind::kLogit;
  spec.model = m;
  spec.seq_len = seq_len;
  spec.validate();
  return spec;
}

OperatorSpec OperatorSpec::attend(const ModelShape& m, std::uint64_t seq_len) {
  OperatorSpec spec = logit(m, seq_len);
  spec.kind = OpKind::kAttend;
  return spec;
}

OperatorSpec OperatorSpec::gemv(std::uint64_t rows, std::uint32_t cols) {
  return logit(ModelShape::gemv(cols), rows);
}

void OperatorSpec::validate() const {
  auto fail = [](const char* msg) {
    throw std::invalid_argument(std::string("OperatorSpec: ") + msg);
  };
  if (model.num_kv_heads == 0 || model.group_size == 0 || model.head_dim == 0)
    fail("zero model dimension");
  if (seq_len == 0) fail("zero sequence length");
  if (model.dtype_bytes == 0 || kLineBytes % model.dtype_bytes != 0)
    fail("dtype must divide the line size");
  const std::uint64_t row_bytes =
      static_cast<std::uint64_t>(model.head_dim) * model.dtype_bytes;
  if (row_bytes % kLineBytes != 0)
    fail("head_dim * dtype must be line-aligned (vector coalescing)");
  // Tensor regions must not overlap.
  if (q_base + q_bytes() > kv_base) fail("Q overlaps K/V region");
  if (kv_base + kv_bytes() > s_base) fail("K/V overlaps S region");
  if (s_base + s_bytes() > out_base) fail("S overlaps output region");
}

}  // namespace llamcat
