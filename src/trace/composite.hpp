// Fuses the thread blocks of N per-operator trace sources into one dispatch
// list so one System run co-schedules concurrent requests against the shared
// LLC. Each operator sits in its own 16 GiB address slot (the slot shifting
// that used to live in the scenario layer), which makes address -> request
// attribution exact: the composite doubles as the IRequestTagger the sim
// layer uses to split shared-run statistics per request.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "trace/mapping.hpp"
#include "trace/operator.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {

/// Address-space stride between operator slots. Every operator of a slot has
/// all four tensor bases shifted by slot * kSlotStride, so distinct
/// requests/layers occupy distinct DRAM rows (and hash to different LLC
/// slices) without perturbing the intra-operator layout the defaults encode.
inline constexpr Addr kSlotStride = 0x4'0000'0000;  // 16 GiB

/// Relocates all four tensor bases of `spec` into address slot `slot`.
OperatorSpec shift_to_slot(OperatorSpec spec, std::uint64_t slot);

/// Registers every address slot `spec`'s tensors touch in `owner`
/// (slot -> dense request index). Slots are the attribution granule, so two
/// requests sharing one slot would make their stats indistinguishable;
/// throws std::invalid_argument if a slot is already owned by a different
/// dense index (`request_ids` maps dense -> external id for the message).
/// Shared by CompositeTbSource and DynamicTbSource.
void claim_operator_slots(
    std::unordered_map<std::uint64_t, std::uint32_t>& owner,
    std::uint32_t dense, std::uint32_t request_id,
    const std::vector<std::uint32_t>& request_ids, const OperatorSpec& spec);

/// How the fused dispatch list interleaves the sub-operators' thread blocks.
enum class FuseOrder : std::uint8_t {
  kRoundRobin,  // one TB from each operator in turn: requests co-resident
  kConcat,      // operator-major: requests drain mostly back-to-back
};

std::string to_string(FuseOrder o);

/// ITbSource over the union of N single-operator TraceGens, with per-TB
/// request/operator provenance and address-based request attribution.
class CompositeTbSource final : public ITbSource, public IRequestTagger {
 public:
  explicit CompositeTbSource(FuseOrder order = FuseOrder::kRoundRobin)
      : order_(order) {}

  /// Adds one operator owned by `request_id`. The spec must already sit in
  /// its final address slot (see shift_to_slot); the composite registers
  /// every slot the spec's tensors touch for attribution and throws
  /// std::invalid_argument if a slot is already owned by another request.
  void add(std::uint32_t request_id, OperatorSpec spec, Mapping mapping);

  // -- ITbSource ------------------------------------------------------------
  [[nodiscard]] std::uint64_t num_tbs() const override {
    ensure_built();
    return tbs_.size();
  }
  [[nodiscard]] const TbDesc& tb(std::uint64_t idx) const override {
    ensure_built();
    return tbs_[idx];
  }
  [[nodiscard]] std::uint32_t instr_count(std::uint64_t tb_idx) const override;
  [[nodiscard]] Instr instr_at(std::uint64_t tb_idx,
                               std::uint32_t i) const override;

  // -- IRequestTagger -------------------------------------------------------
  [[nodiscard]] std::uint32_t num_requests() const override {
    return static_cast<std::uint32_t>(request_ids_.size());
  }
  [[nodiscard]] std::uint32_t request_index_of(Addr line_addr) const override;
  [[nodiscard]] std::uint32_t request_id_at(
      std::uint32_t index) const override {
    return request_ids_[index];
  }

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t num_ops() const { return gens_.size(); }
  [[nodiscard]] FuseOrder order() const { return order_; }
  [[nodiscard]] const TraceGen& op(std::size_t i) const { return *gens_[i]; }

 private:
  struct Ref {
    std::uint32_t op = 0;
    std::uint64_t local = 0;  // TB index within gens_[op]
  };

  /// Materializes the fused dispatch list on first use after add()s (adding
  /// B operators then building once is O(total TBs), not O(B * total)).
  void ensure_built() const;

  FuseOrder order_;
  std::vector<std::unique_ptr<TraceGen>> gens_;
  std::vector<std::uint32_t> op_request_id_;  // per op: external request id
  std::vector<std::uint32_t> request_ids_;    // dense index -> external id
  std::unordered_map<std::uint32_t, std::uint32_t> request_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_owner_;  // -> dense
  // Lazily built dispatch-list cache (see ensure_built).
  mutable bool built_ = false;
  mutable std::vector<Ref> refs_;    // global TB idx -> (op, local)
  mutable std::vector<TbDesc> tbs_;  // with provenance, ids renumbered
};

}  // namespace llamcat
