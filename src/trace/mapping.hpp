// Dataflow mapping of an operator onto the machine: which loop runs where
// (Timeloop-style spatial/temporal levels) and how L is tiled into thread
// blocks. Mappings can come from the built-in Mapper or be handwritten, as
// in the paper's flow (Fig 6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/operator.hpp"

namespace llamcat {

/// Order in which thread blocks are emitted to the global scheduler. The
/// paper's workload uses wave order (h, l-tile, g): the G thread blocks that
/// share one KV tile are adjacent, so they run concurrently across cores and
/// their K accesses can merge in cache/MSHR (the GQA locality of §6.3.3).
enum class TbOrder : std::uint8_t {
  kHLG,  // for h { for l_tile { for g } } } - wave order (default)
  kHGL,  // for h { for g { for l_tile } } } - per-head streaming
  kLHG,  // for l_tile { for h { for g } } } - tile-major
};

std::string to_string(TbOrder o);

/// One thread block: a contiguous L-range of one (h, g) pair.
///
/// `request_id` / `source_op` record provenance when thread blocks of
/// several operators are fused into one dispatch list (CompositeTbSource):
/// the serving request the block belongs to and the index of its operator
/// within the fused source. Single-operator sources leave both at 0.
struct TbDesc {
  TbId id = 0;
  std::uint32_t h = 0;
  std::uint32_t g = 0;
  std::uint64_t l_begin = 0;
  std::uint64_t l_end = 0;  // exclusive
  std::uint32_t request_id = 0;
  std::uint32_t source_op = 0;

  [[nodiscard]] std::uint64_t l_count() const { return l_end - l_begin; }
};

/// Complete mapping of an operator run.
struct Mapping {
  /// L elements per thread block (the innermost L1 temporal tile).
  std::uint32_t l_tile = 32;
  TbOrder order = TbOrder::kHLG;
  /// Vector width in elements; one vector load coalesces into
  /// lanes*dtype/64 line requests (paper §5: 128-wide vector cores).
  std::uint32_t vector_lanes = 128;
  /// Core compute cycles charged per L element (the MAC+reduce work between
  /// K-line loads; decode is memory bound so this is small).
  std::uint32_t compute_cycles_per_l = 2;

  /// Output elements per cache line for this operator's dtype.
  [[nodiscard]] std::uint32_t out_elems_per_line(
      const OperatorSpec& spec) const {
    return kLineBytes / spec.model.dtype_bytes;
  }
  /// Output cache lines each thread block covers (the paper constrains this
  /// to 1-2, §6.2.2).
  [[nodiscard]] std::uint32_t tb_out_lines(const OperatorSpec& spec) const;

  /// Validates the paper's dataflow constraints against `spec`:
  ///  (1) the fastest axis maps whole cache lines to each vector core;
  ///  (2) at least 64B of the L dimension sits in the innermost L1 temporal
  ///      level (no AttScore false sharing across cores).
  /// Throws std::invalid_argument on violation.
  void validate(const OperatorSpec& spec) const;

  /// Expands the mapping into the global thread-block dispatch list.
  [[nodiscard]] std::vector<TbDesc> thread_blocks(
      const OperatorSpec& spec) const;

  /// Number of thread blocks without materializing them.
  [[nodiscard]] std::uint64_t num_thread_blocks(
      const OperatorSpec& spec) const;
};

/// Closed-form traffic numbers for a (spec, mapping) pair; used by the
/// mapper's cost model and by tests to cross-check the trace generator.
struct TrafficEstimate {
  std::uint64_t total_instructions = 0;
  std::uint64_t load_line_requests = 0;   // line-granular loads issued
  std::uint64_t store_line_requests = 0;
  std::uint64_t unique_load_lines = 0;    // compulsory DRAM traffic floor
  std::uint64_t unique_store_lines = 0;
  std::uint64_t compute_cycles = 0;

  [[nodiscard]] std::uint64_t min_dram_bytes() const {
    return (unique_load_lines + unique_store_lines) * kLineBytes;
  }
  /// Loads issued per unique line: the GQA reuse the policies try to catch.
  [[nodiscard]] double reuse_factor() const {
    return unique_load_lines == 0
               ? 0.0
               : static_cast<double>(load_line_requests) /
                     static_cast<double>(unique_load_lines);
  }
};

TrafficEstimate estimate_traffic(const OperatorSpec& spec, const Mapping& m);

}  // namespace llamcat
