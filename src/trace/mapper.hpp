// Analytical mapper: searches tilings/orders under the paper's §6.2.2
// constraints and scores them with a closed-form cost model. Stands in for
// Timeloop in the hybrid framework (Fig 6); handwritten mappings bypass it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "trace/mapping.hpp"
#include "trace/operator.hpp"

namespace llamcat {

struct MapperOptions {
  /// Output cache lines a thread block may cover (paper: best is 1-2).
  std::uint32_t min_out_lines = 1;
  std::uint32_t max_out_lines = 2;
  std::vector<TbOrder> orders = {TbOrder::kHLG, TbOrder::kLHG, TbOrder::kHGL};
  std::uint32_t compute_cycles_per_l = 2;
};

struct MapperResult {
  Mapping mapping;
  TrafficEstimate traffic;
  double cost = 0.0;
  std::string rationale;
};

class Mapper {
 public:
  explicit Mapper(MapperOptions opts = {}) : opts_(std::move(opts)) {}

  /// Returns the lowest-cost valid mapping. Throws if the search space is
  /// empty for `spec` (e.g. seq_len not tileable).
  [[nodiscard]] MapperResult search(const OperatorSpec& spec,
                                    const CoreConfig& cores,
                                    const LlcConfig& llc) const;

  /// Scores one candidate (exposed for tests and ablations).
  [[nodiscard]] double cost(const OperatorSpec& spec, const Mapping& m,
                            const CoreConfig& cores,
                            const LlcConfig& llc) const;

 private:
  MapperOptions opts_;
};

}  // namespace llamcat
