#include "trace/mapper.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/math_util.hpp"

namespace llamcat {

namespace {

/// Dispatch distance between two thread blocks that share KV lines. Sharing
/// is only exploitable (cache/MSHR merge) when the sharers are co-resident,
/// i.e. within one wave of cores*windows concurrently running blocks.
std::uint64_t sharing_distance(const OperatorSpec& spec, const Mapping& m) {
  const std::uint64_t tiles = spec.seq_len / m.l_tile;
  switch (m.order) {
    case TbOrder::kHLG:
    case TbOrder::kLHG:
      return spec.model.group_size;  // the G sharers are adjacent
    case TbOrder::kHGL:
      return tiles;  // sharers are a whole L-sweep apart
  }
  return tiles;
}

}  // namespace

double Mapper::cost(const OperatorSpec& spec, const Mapping& m,
                    const CoreConfig& cores, const LlcConfig& llc) const {
  const TrafficEstimate t = estimate_traffic(spec, m);
  const std::uint64_t wave = static_cast<std::uint64_t>(cores.num_cores) *
                             cores.num_inst_windows;

  // Base: compulsory DRAM traffic (bytes). All candidates share this for a
  // given operator; it anchors the scale of the penalties below.
  double c = static_cast<double>(t.min_dram_bytes());

  // Re-fetch risk: requests beyond the compulsory floor hit DRAM again when
  // sharers are not co-resident. Model the exploitable fraction as
  // wave / sharing_distance (capped at 1).
  const double d = static_cast<double>(sharing_distance(spec, m));
  const double coresident = d == 0.0 ? 1.0 : std::min(1.0, static_cast<double>(wave) / d);
  const double extra_requests = static_cast<double>(t.load_line_requests) -
                                static_cast<double>(t.unique_load_lines);
  c += (1.0 - coresident) * extra_requests * kLineBytes;

  // Larger tiles reduce locality (paper §6.2.2): the co-resident working set
  // must fit in the LLC or reuse decays. Penalize overflow linearly.
  const double tile_kv_bytes = static_cast<double>(m.l_tile) *
                               spec.model.head_dim * spec.model.dtype_bytes;
  const double concurrent_ws = tile_kv_bytes * static_cast<double>(wave);
  const double llc_bytes = static_cast<double>(llc.size_bytes);
  if (concurrent_ws > llc_bytes) c += (concurrent_ws - llc_bytes);

  // Tiny-TB overhead: the Q prologue is re-fetched per TB.
  const std::uint64_t num_tbs = m.num_thread_blocks(spec);
  c += static_cast<double>(num_tbs) *
       (spec.model.head_dim * spec.model.dtype_bytes);

  // Load imbalance: partial final wave leaves cores idle.
  const std::uint64_t rem = num_tbs % wave;
  if (rem != 0) {
    c += static_cast<double>(wave - rem) / static_cast<double>(wave) *
         static_cast<double>(t.min_dram_bytes()) /
         static_cast<double>(ceil_div(num_tbs, wave));
  }
  return c;
}

MapperResult Mapper::search(const OperatorSpec& spec, const CoreConfig& cores,
                            const LlcConfig& llc) const {
  const std::uint32_t elems_per_line =
      kLineBytes / spec.model.dtype_bytes;
  MapperResult best;
  best.cost = std::numeric_limits<double>::infinity();
  bool found = false;

  for (std::uint32_t lines = opts_.min_out_lines; lines <= opts_.max_out_lines;
       ++lines) {
    const std::uint32_t l_tile = lines * elems_per_line;
    if (spec.seq_len % l_tile != 0) continue;
    for (TbOrder order : opts_.orders) {
      Mapping m;
      m.l_tile = l_tile;
      m.order = order;
      m.compute_cycles_per_l = opts_.compute_cycles_per_l;
      try {
        m.validate(spec);
      } catch (const std::invalid_argument&) {
        continue;
      }
      const double c = cost(spec, m, cores, llc);
      if (c < best.cost) {
        best.cost = c;
        best.mapping = m;
        best.traffic = estimate_traffic(spec, m);
        found = true;
      }
    }
  }
  if (!found) {
    throw std::runtime_error(
        "Mapper: no valid mapping for the given operator");
  }
  std::ostringstream why;
  why << "l_tile=" << best.mapping.l_tile << " ("
      << best.mapping.tb_out_lines(spec) << " output line(s)/TB), order="
      << to_string(best.mapping.order)
      << ", est. compulsory DRAM=" << best.traffic.min_dram_bytes() / 1024
      << " KiB, reuse x" << best.traffic.reuse_factor();
  best.rationale = why.str();
  return best;
}

}  // namespace llamcat
