#include "trace/tracegen.hpp"

#include <cassert>

#include "common/math_util.hpp"

namespace llamcat {

TraceGen::TraceGen(OperatorSpec spec, Mapping mapping)
    : spec_(std::move(spec)), mapping_(mapping) {
  spec_.validate();
  mapping_.validate(spec_);
  tbs_ = mapping_.thread_blocks(spec_);
  kv_lines_per_l_ = static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(spec_.model.head_dim) *
      spec_.model.dtype_bytes / kLineBytes);
  q_lines_ = kv_lines_per_l_;
  out_elems_per_line_ = kLineBytes / spec_.model.dtype_bytes;
}

std::uint32_t TraceGen::instr_count(std::uint64_t tb_idx) const {
  const TbDesc& d = tbs_[tb_idx];
  const auto lc = static_cast<std::uint32_t>(d.l_count());
  if (spec_.kind == OpKind::kLogit) {
    return q_lines_ + lc * (kv_lines_per_l_ + 1) +
           mapping_.tb_out_lines(spec_);
  }
  // Attend: S loads interleave every out_elems_per_line_ L steps.
  const std::uint32_t s_loads =
      static_cast<std::uint32_t>(ceil_div(lc, out_elems_per_line_));
  return s_loads + lc * (kv_lines_per_l_ + 1) + q_lines_;
}

Instr TraceGen::instr_at(std::uint64_t tb_idx, std::uint32_t i) const {
  const TbDesc& d = tbs_[tb_idx];
  assert(i < instr_count(tb_idx));
  return spec_.kind == OpKind::kLogit ? logit_instr(d, i) : attend_instr(d, i);
}

Instr TraceGen::logit_instr(const TbDesc& tb, std::uint32_t i) const {
  // Prologue: Q[h,g,:] vector load.
  if (i < q_lines_) {
    return Instr{Instr::Kind::kLoad,
                 line_align(spec_.q_elem(tb.h, tb.g, 0)) +
                     static_cast<Addr>(i) * kLineBytes,
                 1};
  }
  i -= q_lines_;
  const std::uint32_t per_l = kv_lines_per_l_ + 1;
  const auto lc = static_cast<std::uint32_t>(tb.l_count());
  if (i < lc * per_l) {
    const std::uint32_t l_off = i / per_l;
    const std::uint32_t pos = i % per_l;
    if (pos < kv_lines_per_l_) {
      const Addr base = line_align(spec_.kv_elem(tb.h, tb.l_begin + l_off, 0));
      return Instr{Instr::Kind::kLoad, base + static_cast<Addr>(pos) * kLineBytes,
                   1};
    }
    return Instr{Instr::Kind::kCompute, 0, mapping_.compute_cycles_per_l};
  }
  i -= lc * per_l;
  // Epilogue: store the AttScore tile (line-aligned by constraint 2).
  const Addr s0 = line_align(spec_.s_elem(tb.h, tb.g, tb.l_begin));
  return Instr{Instr::Kind::kStore, s0 + static_cast<Addr>(i) * kLineBytes, 1};
}

Instr TraceGen::attend_instr(const TbDesc& tb, std::uint32_t i) const {
  // Layout: groups of out_elems_per_line_ L-steps; each group is one S-line
  // load followed by (kvL loads + compute) per step; epilogue stores O.
  const std::uint32_t per_l = kv_lines_per_l_ + 1;
  const std::uint32_t group_steps = out_elems_per_line_;
  const std::uint32_t group_sz = 1 + group_steps * per_l;
  const auto lc = static_cast<std::uint32_t>(tb.l_count());
  const std::uint32_t n_groups =
      static_cast<std::uint32_t>(ceil_div(lc, group_steps));
  // Body length accounting for a possibly short final group.
  const std::uint32_t full_groups = lc / group_steps;
  const std::uint32_t tail_steps = lc % group_steps;
  const std::uint32_t body =
      full_groups * group_sz + (tail_steps ? 1 + tail_steps * per_l : 0);
  (void)n_groups;
  if (i < body) {
    const std::uint32_t grp = i / group_sz;
    std::uint32_t within = i % group_sz;
    const std::uint64_t l_group_base =
        tb.l_begin + static_cast<std::uint64_t>(grp) * group_steps;
    if (within == 0) {
      return Instr{Instr::Kind::kLoad,
                   line_align(spec_.s_elem(tb.h, tb.g, l_group_base)), 1};
    }
    within -= 1;
    const std::uint32_t step = within / per_l;
    const std::uint32_t pos = within % per_l;
    if (pos < kv_lines_per_l_) {
      const Addr base =
          line_align(spec_.kv_elem(tb.h, l_group_base + step, 0));
      return Instr{Instr::Kind::kLoad,
                   base + static_cast<Addr>(pos) * kLineBytes, 1};
    }
    return Instr{Instr::Kind::kCompute, 0, mapping_.compute_cycles_per_l};
  }
  i -= body;
  // Epilogue: partial O[h,g,:] vector store.
  const Addr o0 = line_align(spec_.out_elem(tb.h, tb.g, 0));
  return Instr{Instr::Kind::kStore, o0 + static_cast<Addr>(i) * kLineBytes, 1};
}

}  // namespace llamcat
