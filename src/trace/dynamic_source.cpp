#include "trace/dynamic_source.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace llamcat {

std::uint32_t DynamicTbSource::dense_of(std::uint32_t request_id) {
  const auto [it, inserted] = request_index_.try_emplace(
      request_id, static_cast<std::uint32_t>(request_ids_.size()));
  if (inserted) {
    request_ids_.push_back(request_id);
    req_tbs_.push_back(0);
    req_retired_.push_back(false);
  }
  return it->second;
}

void DynamicTbSource::add(std::uint32_t request_id, OperatorSpec spec,
                          Mapping mapping) {
  const std::uint32_t dense = dense_of(request_id);
  if (req_retired_[dense]) {
    throw std::invalid_argument("DynamicTbSource: request " +
                                std::to_string(request_id) +
                                " was already retired");
  }
  claim_operator_slots(slot_owner_, dense, request_id, request_ids_, spec);
  staged_.push_back(static_cast<std::uint32_t>(gens_.size()));
  gens_.push_back(std::make_unique<TraceGen>(std::move(spec), mapping));
  op_request_id_.push_back(request_id);
}

std::uint64_t DynamicTbSource::commit(FuseOrder order) {
  std::uint64_t added = 0;
  for (const std::uint32_t op : staged_) added += gens_[op]->num_tbs();
  refs_.reserve(refs_.size() + added);
  tbs_.reserve(tbs_.size() + added);

  const auto append = [this](std::uint32_t op, std::uint64_t local) {
    const std::uint64_t idx = refs_.size();
    refs_.push_back(Ref{op, local});
    TbDesc d = gens_[op]->tb(local);
    d.id = static_cast<TbId>(idx);
    d.request_id = op_request_id_[op];
    d.source_op = op;
    tbs_.push_back(d);
    ++req_tbs_[request_index_.at(op_request_id_[op])];
  };

  if (order == FuseOrder::kConcat) {
    for (const std::uint32_t op : staged_) {
      for (std::uint64_t t = 0; t < gens_[op]->num_tbs(); ++t) append(op, t);
    }
  } else {  // kRoundRobin: one TB per staged operator in turn, staging order
    std::vector<std::uint64_t> next(staged_.size(), 0);
    std::uint64_t placed = 0;
    while (placed < added) {
      for (std::size_t i = 0; i < staged_.size(); ++i) {
        const std::uint32_t op = staged_[i];
        if (next[i] < gens_[op]->num_tbs()) {
          append(op, next[i]++);
          ++placed;
        }
      }
    }
  }
  staged_.clear();
  return added;
}

void DynamicTbSource::retire_request(std::uint32_t request_id) {
  const auto it = request_index_.find(request_id);
  if (it == request_index_.end()) return;
  req_retired_[it->second] = true;
  for (std::size_t op = 0; op < gens_.size(); ++op) {
    if (op_request_id_[op] == request_id) gens_[op].reset();
  }
}

bool DynamicTbSource::retired(std::uint32_t request_id) const {
  const auto it = request_index_.find(request_id);
  return it != request_index_.end() && req_retired_[it->second];
}

std::uint64_t DynamicTbSource::tbs_of_request(std::uint32_t request_id) const {
  const auto it = request_index_.find(request_id);
  return it == request_index_.end() ? 0 : req_tbs_[it->second];
}

std::uint32_t DynamicTbSource::instr_count(std::uint64_t tb_idx) const {
  const Ref& r = refs_[tb_idx];
  assert(gens_[r.op] && "instruction stream of a retired request");
  return gens_[r.op]->instr_count(r.local);
}

Instr DynamicTbSource::instr_at(std::uint64_t tb_idx, std::uint32_t i) const {
  const Ref& r = refs_[tb_idx];
  assert(gens_[r.op] && "instruction stream of a retired request");
  return gens_[r.op]->instr_at(r.local, i);
}

std::uint32_t DynamicTbSource::request_index_of(Addr line_addr) const {
  const auto it = slot_owner_.find(line_addr / kSlotStride);
  return it == slot_owner_.end() ? kNoRequest : it->second;
}

}  // namespace llamcat
