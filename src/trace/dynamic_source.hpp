// Append-only multi-request trace source for the continuous-batching engine.
// Unlike CompositeTbSource (whose operator set is fixed before the System is
// built), a DynamicTbSource grows while a System is running: the streaming
// executor stages a request's next-stage operator with add() the moment its
// previous stage completes, commits the staged batch (optionally
// interleaving simultaneously staged operators round-robin, exactly like
// CompositeTbSource fuses a wave), and the scheduler picks the new thread
// blocks up through TbScheduler::sync_with_source(). Committed thread-block
// indices are stable forever, so in-flight work is never invalidated.
//
// Requests occupy disjoint 16 GiB address slots (see kSlotStride), which
// keeps address -> request attribution exact across admissions and
// retirements: retire_request() releases a finished request's instruction
// streams (bounding memory over a long stream) but keeps its slot ownership
// and dense index, so late writebacks of its lines still attribute
// correctly.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "trace/composite.hpp"
#include "trace/mapping.hpp"
#include "trace/operator.hpp"
#include "trace/tracegen.hpp"

namespace llamcat {

class DynamicTbSource final : public ITbSource, public IRequestTagger {
 public:
  /// Stages one operator owned by `request_id` for the next commit(). The
  /// spec must already sit in its final address slot (see shift_to_slot);
  /// staging claims every slot the spec's tensors touch and throws
  /// std::invalid_argument on cross-request aliasing.
  void add(std::uint32_t request_id, OperatorSpec spec, Mapping mapping);

  /// Appends the staged operators' thread blocks to the dispatch list and
  /// returns how many were added. kRoundRobin interleaves one TB per staged
  /// operator in turn (staging order); kConcat appends operator-major.
  /// Previously committed TBs keep their indices.
  std::uint64_t commit(FuseOrder order = FuseOrder::kRoundRobin);

  /// Releases the instruction streams of every operator owned by
  /// `request_id`. Only valid once all of the request's thread blocks have
  /// completed; the request's TbDescs, slot ownership and dense index
  /// survive so attribution of straggler traffic stays exact.
  void retire_request(std::uint32_t request_id);
  [[nodiscard]] bool retired(std::uint32_t request_id) const;

  /// Total thread blocks ever committed for `request_id` (0 if unknown).
  [[nodiscard]] std::uint64_t tbs_of_request(std::uint32_t request_id) const;

  // -- ITbSource ------------------------------------------------------------
  [[nodiscard]] std::uint64_t num_tbs() const override { return tbs_.size(); }
  [[nodiscard]] const TbDesc& tb(std::uint64_t idx) const override {
    return tbs_[idx];
  }
  [[nodiscard]] std::uint32_t instr_count(std::uint64_t tb_idx) const override;
  [[nodiscard]] Instr instr_at(std::uint64_t tb_idx,
                               std::uint32_t i) const override;

  // -- IRequestTagger -------------------------------------------------------
  [[nodiscard]] std::uint32_t num_requests() const override {
    return static_cast<std::uint32_t>(request_ids_.size());
  }
  [[nodiscard]] std::uint32_t request_index_of(Addr line_addr) const override;
  [[nodiscard]] std::uint32_t request_id_at(
      std::uint32_t index) const override {
    return request_ids_[index];
  }

  // -- introspection --------------------------------------------------------
  [[nodiscard]] std::size_t num_ops() const { return gens_.size(); }
  [[nodiscard]] std::size_t staged_ops() const { return staged_.size(); }

 private:
  struct Ref {
    std::uint32_t op = 0;
    std::uint64_t local = 0;  // TB index within gens_[op]
  };

  [[nodiscard]] std::uint32_t dense_of(std::uint32_t request_id);

  std::vector<std::unique_ptr<TraceGen>> gens_;
  std::vector<std::uint32_t> op_request_id_;  // per op: external request id
  std::vector<std::uint32_t> staged_;         // op indices awaiting commit
  std::vector<std::uint32_t> request_ids_;    // dense index -> external id
  std::unordered_map<std::uint32_t, std::uint32_t> request_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_owner_;  // -> dense
  std::vector<std::uint64_t> req_tbs_;   // per dense: committed TB count
  std::vector<bool> req_retired_;        // per dense
  std::vector<Ref> refs_;    // global TB idx -> (op, local)
  std::vector<TbDesc> tbs_;  // with provenance, ids renumbered
};

}  // namespace llamcat
