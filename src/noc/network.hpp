// Interconnect between cores and LLC slices: fixed-latency delay channels
// with per-slice credits for backpressure (paper Fig 3/4 models the NoC
// abstractly; contention is concentrated in the slice request queues).
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace llamcat {

/// FIFO whose elements become visible `latency` cycles after being pushed.
template <typename T>
class DelayChannel {
 public:
  explicit DelayChannel(std::uint32_t latency) : latency_(latency) {}

  void push(T item, Cycle now) {
    q_.push_back(Timed{now + latency_, std::move(item)});
  }

  /// Front element if it has matured by `now`.
  [[nodiscard]] const T* peek_ready(Cycle now) const {
    if (q_.empty() || q_.front().ready > now) return nullptr;
    return &q_.front().item;
  }

  T pop() {
    assert(!q_.empty());
    T item = std::move(q_.front().item);
    q_.pop_front();
    return item;
  }

  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

  /// Cycle at which the head matures (kNeverCycle when empty). The head is
  /// the minimum: latency is constant, so ready values are FIFO-ordered.
  [[nodiscard]] Cycle next_ready() const {
    return q_.empty() ? kNeverCycle : q_.front().ready;
  }

 private:
  struct Timed {
    Cycle ready;
    T item;
  };
  std::uint32_t latency_;
  std::deque<Timed> q_;
};

/// Core->slice request channels (credited) and slice->core response
/// channels. A credit is consumed when a core injects a request toward a
/// slice and released when the slice accepts it into its request queue, so
/// slice-queue backpressure propagates to the cores.
class Network {
 public:
  Network(const NocConfig& cfg, std::uint32_t num_cores,
          std::uint32_t num_slices, std::uint32_t credits_per_slice = 32);

  // ---- request direction --------------------------------------------------
  [[nodiscard]] bool can_send_request(std::uint32_t slice) const {
    return credits_[slice] > 0;
  }
  // The accessors below run for every core and slice on every stepped
  // cycle (hot per the self-benchmark profile); all are inlined.
  void send_request(std::uint32_t slice, const MemRequest& req, Cycle now) {
    assert(can_send_request(slice));
    --credits_[slice];
    req_ch_[slice].push(req, now);
    ++requests_sent_;
    ++in_flight_;
  }
  /// Matured request at the head of a slice's ingress, if any.
  [[nodiscard]] const MemRequest* peek_request(std::uint32_t slice,
                                               Cycle now) const {
    return req_ch_[slice].peek_ready(now);
  }
  /// Pops the head request and releases its credit.
  MemRequest pop_request(std::uint32_t slice) {
    MemRequest r = req_ch_[slice].pop();
    ++credits_[slice];
    assert(credits_[slice] <= credits_per_slice_);
    --in_flight_;
    return r;
  }

  // ---- response direction -------------------------------------------------
  void send_response(const MemResponse& resp, Cycle now) {
    resp_ch_[resp.core].push(resp, now);
    ++in_flight_;
  }
  [[nodiscard]] const MemResponse* peek_response(CoreId core,
                                                 Cycle now) const {
    return resp_ch_[core].peek_ready(now);
  }
  MemResponse pop_response(CoreId core) {
    --in_flight_;
    return resp_ch_[core].pop();
  }

  /// O(1): no messages in flight in either direction.
  [[nodiscard]] bool idle() const { return in_flight_ == 0; }
  [[nodiscard]] std::uint64_t requests_sent() const { return requests_sent_; }

  // ---- skip-ahead event hooks --------------------------------------------
  /// Maturity cycle of the head request toward `slice` (kNeverCycle if the
  /// channel is empty).
  [[nodiscard]] Cycle next_request_ready(std::uint32_t slice) const {
    return req_ch_[slice].next_ready();
  }
  /// Maturity cycle of the head response toward `core`.
  [[nodiscard]] Cycle next_response_ready(CoreId core) const {
    return resp_ch_[core].next_ready();
  }

 private:
  std::vector<DelayChannel<MemRequest>> req_ch_;    // per slice
  std::vector<DelayChannel<MemResponse>> resp_ch_;  // per core
  std::vector<std::uint32_t> credits_;
  std::uint32_t credits_per_slice_;
  std::uint64_t requests_sent_ = 0;
  std::uint64_t in_flight_ = 0;  // total queued messages, both directions
};

}  // namespace llamcat
