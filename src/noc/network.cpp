#include "noc/network.hpp"

namespace llamcat {

Network::Network(const NocConfig& cfg, std::uint32_t num_cores,
                 std::uint32_t num_slices, std::uint32_t credits_per_slice)
    : credits_per_slice_(credits_per_slice) {
  req_ch_.reserve(num_slices);
  for (std::uint32_t s = 0; s < num_slices; ++s)
    req_ch_.emplace_back(cfg.req_latency);
  resp_ch_.reserve(num_cores);
  for (std::uint32_t c = 0; c < num_cores; ++c)
    resp_ch_.emplace_back(cfg.resp_latency);
  credits_.assign(num_slices, credits_per_slice_);
}

void Network::send_request(std::uint32_t slice, const MemRequest& req,
                           Cycle now) {
  assert(can_send_request(slice));
  --credits_[slice];
  req_ch_[slice].push(req, now);
  ++requests_sent_;
}

const MemRequest* Network::peek_request(std::uint32_t slice,
                                        Cycle now) const {
  return req_ch_[slice].peek_ready(now);
}

MemRequest Network::pop_request(std::uint32_t slice) {
  MemRequest r = req_ch_[slice].pop();
  ++credits_[slice];
  assert(credits_[slice] <= credits_per_slice_);
  return r;
}

void Network::send_response(const MemResponse& resp, Cycle now) {
  resp_ch_[resp.core].push(resp, now);
}

const MemResponse* Network::peek_response(CoreId core, Cycle now) const {
  return resp_ch_[core].peek_ready(now);
}

MemResponse Network::pop_response(CoreId core) { return resp_ch_[core].pop(); }

bool Network::idle() const {
  for (const auto& ch : req_ch_) {
    if (!ch.empty()) return false;
  }
  for (const auto& ch : resp_ch_) {
    if (!ch.empty()) return false;
  }
  return true;
}

}  // namespace llamcat
