#include "noc/network.hpp"

namespace llamcat {

Network::Network(const NocConfig& cfg, std::uint32_t num_cores,
                 std::uint32_t num_slices, std::uint32_t credits_per_slice)
    : credits_per_slice_(credits_per_slice) {
  req_ch_.reserve(num_slices);
  for (std::uint32_t s = 0; s < num_slices; ++s)
    req_ch_.emplace_back(cfg.req_latency);
  resp_ch_.reserve(num_cores);
  for (std::uint32_t c = 0; c < num_cores; ++c)
    resp_ch_.emplace_back(cfg.resp_latency);
  credits_.assign(num_slices, credits_per_slice_);
}

}  // namespace llamcat
